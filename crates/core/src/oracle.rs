//! The closest-landmark oracle (Fig. 5a).
//!
//! A lower bound on the street-level technique's error: assume every
//! website that passed the locality tests really is where its entity's
//! postal address says, and assume the technique always picks the landmark
//! closest to the target. The remaining error is the distance to that
//! closest landmark — §5.2.1 uses it to show that at most 33% of targets
//! could ever be geolocated at street level.

use geo_model::point::GeoPoint;
use geo_model::units::Km;
use web_sim::ecosystem::WebEcosystem;
use web_sim::EntityId;

/// The oracle's pick: the passed landmark closest to the (true) target
/// location. Returns `None` when the landmark set is empty — the paper
/// falls back to CBG for those 46 targets.
pub fn closest_landmark(
    eco: &WebEcosystem,
    landmarks: &[EntityId],
    true_location: &GeoPoint,
) -> Option<(EntityId, Km)> {
    landmarks
        .iter()
        .map(|&id| (id, eco.entity(id).location.distance(true_location)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;
    use web_sim::ecosystem::WebConfig;
    use world_sim::{World, WorldConfig};

    #[test]
    fn picks_the_nearest() {
        let mut w = World::generate(WorldConfig::small(Seed(201))).unwrap();
        let eco = WebEcosystem::generate(&mut w, &WebConfig::default()).unwrap();
        let target = w.host(w.anchors[0]).location;
        let ids: Vec<EntityId> = eco.entities.iter().map(|e| e.id).take(500).collect();
        let (best, d) = closest_landmark(&eco, &ids, &target).unwrap();
        for &id in &ids {
            assert!(eco.entity(id).location.distance(&target) >= d);
        }
        assert!(ids.contains(&best));
    }

    #[test]
    fn empty_set_is_none() {
        let mut w = World::generate(WorldConfig::small(Seed(201))).unwrap();
        let eco = WebEcosystem::generate(&mut w, &WebConfig::default()).unwrap();
        assert!(closest_landmark(&eco, &[], &w.host(w.anchors[0]).location).is_none());
    }
}
