//! The replication's two-step vantage-point selection (§5.1.4).
//!
//! The original VP selection needs every VP to ping every target's
//! representatives — 21.7M measurements for 10k VPs × 723 targets — which
//! RIPE Atlas probes cannot sustain (§5.1.3). The two-step variant:
//!
//! 1. a fixed, greedily chosen earth-covering subset of `s` VPs pings the
//!    representatives and CBG bounds the region;
//! 2. one VP per (AS, city) *inside the region* pings the representatives;
//!    the VP with the lowest median RTT geolocates the target.
//!
//! Small `s` means a looser region and more second-step VPs; the paper
//! finds the sweet spot at `s = 500` (2.88M measurements, 13.2% of the
//! original) with no accuracy loss.

use crate::cbg::{cbg_with, CbgResult, VpMeasurement};
use crate::million::{probe_representatives_resilient, RepProbe};
use crate::resilient::{self, Resilience, TargetLog};
use geo_model::constraint::RegionScratch;
use geo_model::ip::Ipv4;
use geo_model::point::GeoPoint;
use geo_model::soi::SpeedOfInternet;
use net_sim::Network;
use std::collections::HashMap;
use world_sim::ids::HostId;
use world_sim::World;

/// Greedily selects `k` VPs maximizing geographic coverage: each iteration
/// adds the VP with the largest sum of logarithmic distances to those
/// already selected (the Metis-style criterion the paper cites).
pub fn greedy_coverage(world: &World, vps: &[HostId], k: usize) -> Vec<HostId> {
    if vps.is_empty() || k == 0 {
        return Vec::new();
    }
    let locs: Vec<GeoPoint> = vps
        .iter()
        .map(|&v| world.host(v).registered_location)
        .collect();

    // Start from the VP furthest from the centroid of all VPs (a stable,
    // deterministic seed of the greedy chain).
    let centroid = GeoPoint::centroid(&locs).unwrap_or_else(|| GeoPoint::new(0.0, 0.0));
    let first = (0..vps.len())
        .max_by(|&a, &b| {
            locs[a]
                .distance(&centroid)
                .total_cmp(&locs[b].distance(&centroid))
        })
        .expect("non-empty");

    let mut selected = vec![first];
    // Incremental sums of log-distances to the selected set.
    let mut score: Vec<f64> = (0..vps.len())
        .map(|i| log_dist(&locs[i], &locs[first]))
        .collect();
    score[first] = f64::NEG_INFINITY;

    while selected.len() < k.min(vps.len()) {
        let next = (0..vps.len())
            .max_by(|&a, &b| score[a].total_cmp(&score[b]))
            .expect("non-empty");
        if score[next] == f64::NEG_INFINITY {
            break;
        }
        selected.push(next);
        for i in 0..vps.len() {
            if score[i] != f64::NEG_INFINITY {
                score[i] += log_dist(&locs[i], &locs[next]);
            }
        }
        score[next] = f64::NEG_INFINITY;
    }

    selected.into_iter().map(|i| vps[i]).collect()
}

fn log_dist(a: &GeoPoint, b: &GeoPoint) -> f64 {
    // +1 km floor keeps co-located VPs finite.
    (a.distance(b).value() + 1.0).ln()
}

/// Outcome of the two-step geolocation of one target.
#[derive(Debug, Clone)]
pub struct TwoStepOutcome {
    /// The first-step CBG over the coverage subset.
    pub step1_cbg: Option<CbgResult>,
    /// Second-step candidate VPs (one per AS/city inside the region).
    pub step2_candidates: usize,
    /// The single VP chosen to geolocate the target.
    pub chosen_vp: Option<HostId>,
    /// Final CBG result (from the chosen VP's RTT to the target).
    pub cbg: Option<CbgResult>,
    /// Ping measurements spent: step 1 + step 2 representative probes.
    pub measurements: u64,
}

/// Runs the two-step selection and geolocation for one target.
///
/// `coverage` is the fixed first-step subset (from [`greedy_coverage`]);
/// `all_vps` is the full sanitized VP population that step 2 draws from.
pub fn geolocate(
    world: &World,
    net: &Network,
    coverage: &[HostId],
    all_vps: &[HostId],
    target: Ipv4,
    nonce: u64,
) -> TwoStepOutcome {
    geolocate_resilient(
        world,
        net,
        &Resilience::none(),
        coverage,
        all_vps,
        target,
        nonce,
        &mut TargetLog::default(),
    )
}

/// [`geolocate`] with every measurement batch routed through the resilient
/// executor. Fault-free, it issues exactly the same `net-sim` calls.
#[allow(clippy::too_many_arguments)]
pub fn geolocate_resilient(
    world: &World,
    net: &Network,
    res: &Resilience,
    coverage: &[HostId],
    all_vps: &[HostId],
    target: Ipv4,
    nonce: u64,
    log: &mut TargetLog,
) -> TwoStepOutcome {
    // One set of intersection buffers serves every CBG run for this
    // target (step 1, fallback, final estimate).
    let mut scratch = RegionScratch::new();
    // A single chosen VP pings the target for the final estimate.
    let final_ping = |vp: HostId, log: &mut TargetLog| {
        resilient::ping_batch(world, net, res, &[vp], target, 3, nonce ^ 0x5A, log)
            .first()
            .and_then(|(_, o)| o.rtt())
    };

    // Step 1: coverage subset probes the representatives; CBG bounds the
    // region the target (and its /24) must lie in.
    let probe1 = probe_representatives_resilient(world, net, res, coverage, target, nonce, log);
    let ms1: Vec<VpMeasurement> = probe1
        .scores
        .iter()
        .filter_map(|s| {
            s.median_rtt.map(|rtt| VpMeasurement {
                vp: s.vp,
                location: world.host(s.vp).registered_location,
                rtt,
            })
        })
        .collect();
    let step1 = cbg_with(&ms1, SpeedOfInternet::CBG, &mut scratch);
    let mut measurements = probe1.measurements;

    let Some(step1_result) = step1 else {
        // Degenerate first step (split representatives can make the
        // median-RTT circles mutually inconsistent): fall back to the
        // best-scoring first-step VP directly, without region filtering.
        let chosen = probe1
            .scores
            .first()
            .filter(|s| s.median_rtt.is_some())
            .map(|s| s.vp);
        let final_cbg = chosen.and_then(|vp| {
            measurements += 1;
            final_ping(vp, log).and_then(|rtt| {
                cbg_with(
                    &[VpMeasurement {
                        vp,
                        location: world.host(vp).registered_location,
                        rtt,
                    }],
                    SpeedOfInternet::CBG,
                    &mut scratch,
                )
            })
        });
        return TwoStepOutcome {
            step1_cbg: None,
            step2_candidates: 0,
            chosen_vp: chosen,
            cbg: final_cbg,
            measurements,
        };
    };

    // Step 2: one VP per (AS, city) inside the region. Membership is
    // tested against the reduced (active) constraint set: every point of
    // the intersection lies inside the tightest circle, which the active
    // set always contains, so the test is equivalent and much cheaper.
    let active_region =
        geo_model::constraint::Region::from_circles(step1_result.region.active_circles());
    let mut per_pop: HashMap<(u32, u32), HostId> = HashMap::new();
    for &vp in all_vps {
        let h = world.host(vp);
        if active_region.contains(&h.registered_location) {
            per_pop.entry((h.asn.0, h.city.0)).or_insert(vp);
        }
    }
    let mut candidates: Vec<HostId> = per_pop.into_values().collect();
    candidates.sort(); // deterministic order

    let probe2: RepProbe =
        probe_representatives_resilient(world, net, res, &candidates, target, nonce ^ 0xA5, log);
    measurements += probe2.measurements;

    let chosen = probe2
        .scores
        .first()
        .filter(|s| s.median_rtt.is_some())
        .map(|s| s.vp);

    let final_cbg = chosen.and_then(|vp| {
        measurements += 1;
        final_ping(vp, log).and_then(|rtt| {
            cbg_with(
                &[VpMeasurement {
                    vp,
                    location: world.host(vp).registered_location,
                    rtt,
                }],
                SpeedOfInternet::CBG,
                &mut scratch,
            )
        })
    });

    TwoStepOutcome {
        step1_cbg: Some(step1_result),
        step2_candidates: candidates.len(),
        chosen_vp: chosen,
        cbg: final_cbg,
        measurements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;
    use world_sim::WorldConfig;

    fn setup() -> (World, Network, Vec<HostId>) {
        let w = World::generate(WorldConfig::small(Seed(191))).unwrap();
        let net = Network::new(Seed(191));
        let clean: Vec<HostId> = w
            .probes
            .iter()
            .copied()
            .filter(|&p| !w.host(p).is_mis_geolocated())
            .collect();
        (w, net, clean)
    }

    #[test]
    fn greedy_coverage_spreads_out() {
        let (w, _, vps) = setup();
        let sel = greedy_coverage(&w, &vps, 10);
        assert_eq!(sel.len(), 10);
        // No duplicates.
        let mut dedup = sel.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        // Selected VPs are mutually further apart than random pairs on
        // average: compare mean pairwise distance to that of the first 10.
        let mean_pairwise = |ids: &[HostId]| {
            let mut total = 0.0;
            let mut n = 0;
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    total += w.host(a).location.distance(&w.host(b).location).value();
                    n += 1;
                }
            }
            total / n as f64
        };
        let naive: Vec<HostId> = vps.iter().copied().take(10).collect();
        assert!(
            mean_pairwise(&sel) > mean_pairwise(&naive),
            "greedy selection no better spread than arbitrary"
        );
    }

    #[test]
    fn greedy_coverage_edge_cases() {
        let (w, _, vps) = setup();
        assert!(greedy_coverage(&w, &[], 5).is_empty());
        assert!(greedy_coverage(&w, &vps, 0).is_empty());
        let all = greedy_coverage(&w, &vps, vps.len() + 100);
        assert_eq!(all.len(), vps.len());
    }

    #[test]
    fn two_step_geolocates_accurately() {
        let (w, net, vps) = setup();
        let coverage = greedy_coverage(&w, &vps, 30);
        let mut errors = Vec::new();
        for (i, &aid) in w.anchors.iter().enumerate().take(10) {
            let target = w.host(aid);
            let out = geolocate(&w, &net, &coverage, &vps, target.ip, i as u64);
            if let Some(r) = &out.cbg {
                errors.push(r.estimate.distance(&target.location).value());
            }
            assert!(out.measurements > 0);
        }
        assert!(errors.len() >= 7, "too many failures: {}", errors.len());
        let median = geo_model::stats::median(&errors).unwrap();
        assert!(median < 500.0, "median error {median} km");
    }

    #[test]
    fn smaller_first_step_means_more_candidates() {
        let (w, net, vps) = setup();
        let small = greedy_coverage(&w, &vps, 5);
        let large = greedy_coverage(&w, &vps, 60);
        let target = w.host(w.anchors[0]);
        let o_small = geolocate(&w, &net, &small, &vps, target.ip, 1);
        let o_large = geolocate(&w, &net, &large, &vps, target.ip, 1);
        // Looser region (fewer step-1 VPs) should not yield fewer
        // candidates than the tight one.
        assert!(
            o_small.step2_candidates >= o_large.step2_candidates,
            "candidates: small={} large={}",
            o_small.step2_candidates,
            o_large.step2_candidates
        );
    }

    #[test]
    fn resilient_two_step_survives_hostile_faults() {
        use atlas_sim::faults::{FaultPlan, FaultProfile};
        let (w, net, vps) = setup();
        let coverage = greedy_coverage(&w, &vps, 20);
        let run = || {
            let plan = FaultPlan::new(Seed(21), FaultProfile::Hostile);
            let res = Resilience::with_plan(&plan);
            let mut log = TargetLog::default();
            let out = geolocate_resilient(
                &w,
                &net,
                &res,
                &coverage,
                &vps,
                w.host(w.anchors[2]).ip,
                4,
                &mut log,
            );
            (
                out.cbg.map(|r| (r.estimate.lat(), r.estimate.lon())),
                out.measurements,
                format!("{log:?}"),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "hostile two-step not deterministic");
    }

    #[test]
    fn overhead_below_full_selection() {
        let (w, net, vps) = setup();
        let coverage = greedy_coverage(&w, &vps, 20);
        let target = w.host(w.anchors[3]);
        let out = geolocate(&w, &net, &coverage, &vps, target.ip, 9);
        let full = (vps.len() * 3) as u64;
        assert!(
            out.measurements < full,
            "two-step ({}) not cheaper than full ({full})",
            out.measurements
        );
    }
}
