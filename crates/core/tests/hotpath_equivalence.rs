//! Bit-equivalence of the optimized hot path against the pre-optimization
//! reference.
//!
//! The hot-path PR (route memoization, SoA RTT matrices, allocation-free
//! constraint solving) promises *bit-identical* output. These digests were
//! computed from the tree immediately before the optimizations landed, on
//! `WorldConfig::small(Seed(351))`, and must never change: entry
//! coordinates are hashed at full f64 precision, the CSV byte-for-byte,
//! and the published `.igds` snapshot byte-for-byte, each at
//! `IPGEO_THREADS=1` and `IPGEO_THREADS=8`.
//!
//! Traceroutes ride along because the street-level pipeline depends on
//! reverse-path synthesis, which the route cache also memoizes.

use geo_model::ip::Prefix24;
use geo_model::rng::Seed;
use ipgeo::publish::{build_dataset, to_csv};
use net_sim::Network;
use world_sim::ids::HostId;
use world_sim::{World, WorldConfig};

/// FNV-1a over an arbitrary byte stream (matches `geo_model::rng::fnv1a`).
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

fn setup() -> (World, Network, Vec<HostId>, Vec<Prefix24>) {
    let w = World::generate(WorldConfig::small(Seed(351))).unwrap();
    let net = Network::new(Seed(351));
    let vps: Vec<HostId> = w
        .probes
        .iter()
        .copied()
        .filter(|&p| !w.host(p).is_mis_geolocated())
        .collect();
    // Anchor prefixes exercise geofeed/DNS/latency; probe prefixes skew
    // toward the latency + WHOIS rungs of the evidence ladder.
    let mut prefixes: Vec<Prefix24> = w.anchors.iter().map(|&a| w.host(a).ip.prefix24()).collect();
    prefixes.extend(w.probes.iter().take(60).map(|&p| w.host(p).ip.prefix24()));
    prefixes.sort();
    prefixes.dedup();
    (w, net, vps, prefixes)
}

/// Full-precision digest over the dataset entries: prefix, exact
/// coordinate bits, method, and evidence detail.
fn entries_digest(entries: &[ipgeo::publish::DatasetEntry]) -> u64 {
    let mut d = Digest::new();
    for e in entries {
        d.u64(e.prefix.0 as u64);
        d.f64(e.location.lat());
        d.f64(e.location.lon());
        d.u64(fnv1a_bytes(e.evidence.method().as_bytes()));
        d.u64(fnv1a_bytes(e.evidence.detail().as_bytes()));
    }
    d.0
}

fn run_at(threads: &str) -> (u64, u64, u64) {
    std::env::set_var("IPGEO_THREADS", threads);
    let (w, net, vps, prefixes) = setup();
    let entries = build_dataset(&w, &net, &vps, &prefixes, 7);
    assert_eq!(entries.len(), prefixes.len());
    let csv = to_csv(&entries);
    let igds = geo_serve::format::encode(&entries, 351, 7);
    (
        entries_digest(&entries),
        fnv1a_bytes(csv.as_bytes()),
        fnv1a_bytes(&igds),
    )
}

fn traceroute_digest() -> u64 {
    std::env::set_var("IPGEO_THREADS", "1");
    let (w, net, _, _) = setup();
    let mut d = Digest::new();
    for i in 0..w.probes.len().min(40) {
        let src = w.probes[i];
        let dst = w.host(w.anchors[i % w.anchors.len()]).ip;
        let tr = net.traceroute(&w, src, dst, 0xBEEF ^ i as u64);
        for hop in &tr.hops {
            d.u64((hop.waypoint.asn.0 as u64) << 32 | hop.waypoint.city.0 as u64);
            match hop.rtt {
                Some(ms) => d.f64(ms.value()),
                None => d.u64(u64::MAX),
            }
        }
        match tr.dst_rtt {
            Some(ms) => d.f64(ms.value()),
            None => d.u64(u64::MAX),
        }
    }
    d.0
}

// Reference digests from the pre-optimization tree (see module docs).
// The entries digest (coordinates/method/detail) is the original value;
// the CSV and `.igds` digests were re-pinned when the published formats
// gained the confidence column (CSV v2 / `.igds` VERSION 2) — entry
// *content* is still bit-identical to the pre-optimization tree.
const REF_SERIAL: (u64, u64, u64) = (
    0x07fc_1624_a49a_dba7,
    0x061e_b0ac_e61d_ce88,
    0x70c1_bb13_8466_f868,
);
const REF_THREADS8: (u64, u64, u64) = REF_SERIAL;
const REF_TRACEROUTE: u64 = 0x2c3d_3d5f_3505_7e1d;

#[test]
fn dataset_bits_match_pre_optimization_reference() {
    // One test body: IPGEO_THREADS is process-global env.
    let serial = run_at("1");
    let threads8 = run_at("8");
    let tr = traceroute_digest();
    println!("serial   = {serial:#x?}");
    println!("threads8 = {threads8:#x?}");
    println!("traceroute = {tr:#x}");
    assert_eq!(
        serial, REF_SERIAL,
        "serial entries/CSV/.igds digests drifted"
    );
    assert_eq!(
        threads8, REF_THREADS8,
        "threaded entries/CSV/.igds digests drifted"
    );
    assert_eq!(serial, threads8, "thread count changed output bits");
    assert_eq!(tr, REF_TRACEROUTE, "traceroute digests drifted");
}
