//! Property-based tests for the geolocation techniques.

use geo_model::point::GeoPoint;
use geo_model::rng::Seed;
use geo_model::soi::SpeedOfInternet;
use geo_model::units::{Km, Ms};
use ipgeo::cbg::{cbg, shortest_ping, VpMeasurement};
use proptest::prelude::*;
use world_sim::ids::HostId;

/// Measurements whose RTTs are physically consistent with a target at
/// `target` (inflation ≥ 1 keeps 2/3 c circles sound).
fn consistent(target: GeoPoint, specs: &[(f64, f64, f64)]) -> Vec<VpMeasurement> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(bearing, dist, inflation))| {
            let loc = target.destination(bearing, Km(dist));
            VpMeasurement {
                vp: HostId(i as u32),
                location: loc,
                rtt: SpeedOfInternet::CBG.min_rtt(Km(dist)) * inflation + Ms(0.05),
            }
        })
        .collect()
}

fn arb_specs() -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    prop::collection::vec((0.0f64..360.0, 20.0f64..4000.0, 1.05f64..2.5), 3..12)
}

proptest! {
    /// CBG with sound constraints always finds a region containing the
    /// target, and its error never exceeds twice the tightest radius.
    #[test]
    fn cbg_sound_constraints_bound_error(
        lat in -60.0f64..60.0,
        lon in -180.0f64..180.0,
        specs in arb_specs(),
    ) {
        let target = GeoPoint::new(lat, lon);
        let ms = consistent(target, &specs);
        let result = cbg(&ms, SpeedOfInternet::CBG).expect("sound constraints intersect");
        prop_assert!(result.region.contains(&target), "region excludes target");
        let err = result.estimate.distance(&target).value();
        let tightest = result.region_estimate.tightest_radius.value();
        prop_assert!(
            err <= 2.0 * tightest + 1.0,
            "error {err} exceeds 2x tightest radius {tightest}"
        );
    }

    /// Adding a measurement can only shrink (never grow) the CBG region
    /// area estimate, up to sampling tolerance.
    #[test]
    fn extra_constraint_shrinks_region(
        lat in -60.0f64..60.0,
        lon in 0.0f64..90.0,
        specs in arb_specs(),
        extra_bearing in 0.0f64..360.0,
    ) {
        let target = GeoPoint::new(lat, lon);
        let ms = consistent(target, &specs);
        let base = cbg(&ms, SpeedOfInternet::CBG).expect("sound");
        // A tight extra constraint: 30 km away, inflation 1.2.
        let mut more = ms.clone();
        more.extend(consistent(target, &[(extra_bearing, 30.0, 1.2)]));
        let refined = cbg(&more, SpeedOfInternet::CBG).expect("still sound");
        prop_assert!(
            refined.region_estimate.area_km2 <= base.region_estimate.area_km2 * 1.25 + 1.0,
            "area grew: {} -> {}",
            base.region_estimate.area_km2,
            refined.region_estimate.area_km2
        );
    }

    /// Shortest ping returns the measurement with the global minimum RTT.
    #[test]
    fn shortest_ping_is_argmin(specs in arb_specs()) {
        let target = GeoPoint::new(10.0, 10.0);
        let ms = consistent(target, &specs);
        let best = shortest_ping(&ms).expect("non-empty");
        for m in &ms {
            prop_assert!(best.rtt <= m.rtt);
        }
    }

    /// The street-level SOI factor can only widen error bounds relative
    /// to 2/3 c when both succeed without fallback.
    #[test]
    fn street_factor_is_tighter_radius(rtt in 1.0f64..200.0) {
        let street = SpeedOfInternet::STREET_LEVEL.max_distance(Ms(rtt));
        let classic = SpeedOfInternet::CBG.max_distance(Ms(rtt));
        prop_assert!(street < classic);
    }

    /// Database entries are deterministic in the seed (different seeds may
    /// differ, same seed never does).
    #[test]
    fn dbsim_is_seed_deterministic(seed in 0u64..1000) {
        use world_sim::{World, WorldConfig};
        use ipgeo::dbsim::GeoDatabase;
        use std::sync::OnceLock;
        static W: OnceLock<World> = OnceLock::new();
        let w = W.get_or_init(|| {
            World::generate(WorldConfig::small(Seed(6001))).expect("world")
        });
        let prefixes: Vec<_> = w
            .anchors
            .iter()
            .take(5)
            .map(|&a| w.host(a).ip.prefix24())
            .collect();
        let a = GeoDatabase::maxmind_like(w, &prefixes, Seed(seed));
        let b = GeoDatabase::maxmind_like(w, &prefixes, Seed(seed));
        for &p in &prefixes {
            prop_assert_eq!(
                a.lookup(p.network()).map(|g| (g.lat(), g.lon())),
                b.lookup(p.network()).map(|g| (g.lat(), g.lon()))
            );
        }
    }
}
