//! The fault-injection determinism contract: a faulty campaign is still a
//! pure function of (seed, fault profile, nonce). The thread count must
//! never leak into the delivered dataset, the CSV, or the
//! [`CampaignReport`] accounting — and with the `none` profile the
//! resilient executor must be byte-identical to the pre-executor path.

use atlas_sim::{FaultPlan, FaultProfile};
use geo_model::ip::Prefix24;
use geo_model::rng::Seed;
use ipgeo::publish::DatasetEntry;
use ipgeo::resilient::CampaignReport;
use ipgeo::Resilience;
use net_sim::Network;
use std::sync::Mutex;
use world_sim::ids::HostId;
use world_sim::{World, WorldConfig};

/// `IPGEO_THREADS` is process-global; tests that flip it must not
/// interleave.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn setup() -> (World, Network, Vec<HostId>, Vec<Prefix24>) {
    let world = World::generate(WorldConfig::small(Seed(351))).unwrap();
    let net = Network::new(Seed(351));
    let vps: Vec<HostId> = world
        .probes
        .iter()
        .copied()
        .filter(|&p| !world.host(p).is_mis_geolocated())
        .collect();
    // Probe prefixes rarely carry geofeed/DNS evidence, so the latency
    // step — the fault-exposed path — actually runs.
    let mut prefixes: Vec<Prefix24> = world
        .probes
        .iter()
        .take(40)
        .map(|&p| world.host(p).ip.prefix24())
        .collect();
    prefixes.sort();
    prefixes.dedup();
    (world, net, vps, prefixes)
}

fn build(profile: FaultProfile) -> (Vec<DatasetEntry>, CampaignReport, String) {
    let (world, net, vps, prefixes) = setup();
    let plan = FaultPlan::new(Seed(351), profile);
    let res = Resilience::with_plan(&plan);
    let (entries, report) =
        ipgeo::publish::build_dataset_resilient(&world, &net, &res, &vps, &prefixes, 7);
    let csv = ipgeo::publish::to_csv(&entries);
    (entries, report, csv)
}

fn entry_bits(entries: &[DatasetEntry]) -> Vec<(u32, u64, u64, String)> {
    entries
        .iter()
        .map(|e| {
            (
                e.prefix.0,
                e.location.lat().to_bits(),
                e.location.lon().to_bits(),
                format!("{:?}", e.evidence),
            )
        })
        .collect()
}

/// Acceptance: same seed + same profile ⇒ bit-identical dataset, CSV, and
/// campaign report, at any `IPGEO_THREADS`. This is the test the CI
/// `chaos` job runs at 1 and 8 threads.
#[test]
fn faulty_campaign_is_bit_identical_across_thread_counts() {
    let _env = ENV_LOCK.lock().unwrap();
    for profile in [FaultProfile::Flaky, FaultProfile::Hostile] {
        std::env::set_var("IPGEO_THREADS", "1");
        assert_eq!(geo_model::runtime::threads(), 1);
        let serial = build(profile);
        std::env::set_var("IPGEO_THREADS", "8");
        assert_eq!(geo_model::runtime::threads(), 8);
        let parallel = build(profile);
        std::env::remove_var("IPGEO_THREADS");

        assert_eq!(
            entry_bits(&serial.0),
            entry_bits(&parallel.0),
            "{profile}: entries differ across thread counts"
        );
        assert_eq!(serial.2, parallel.2, "{profile}: CSV differs");
        assert_eq!(serial.1, parallel.1, "{profile}: campaign report differs");
        assert_eq!(
            serial.1.to_string(),
            parallel.1.to_string(),
            "{profile}: rendered report differs"
        );
        assert!(
            serial.1.faults.total() > 0,
            "{profile}: no faults fired — the equivalence is vacuous"
        );
    }
}

/// Acceptance: the `none` profile goes through the executor yet yields the
/// exact entries and CSV of the pre-executor `build_dataset`, with empty
/// fault/retry accounting.
#[test]
fn none_profile_matches_the_pre_executor_path() {
    let _env = ENV_LOCK.lock().unwrap();
    let (world, net, vps, prefixes) = setup();
    let plain = ipgeo::publish::build_dataset(&world, &net, &vps, &prefixes, 7);
    let (entries, report, csv) = build(FaultProfile::None);
    assert_eq!(entry_bits(&plain), entry_bits(&entries));
    assert_eq!(ipgeo::publish::to_csv(&plain), csv);
    assert_eq!(report.faults.total(), 0);
    assert_eq!(report.retries, 0);
    assert_eq!(report.credits.charged, report.credits.baseline);
    assert_eq!(report.credits.refunded, 0);
}

/// The million-scale campaign carries the same contract: identical
/// outcomes and report across thread counts under hostile faults.
#[test]
fn million_scale_campaign_is_bit_identical_across_thread_counts() {
    let _env = ENV_LOCK.lock().unwrap();
    let run = || {
        let (world, net, vps, _) = setup();
        let targets: Vec<_> = world
            .anchors
            .iter()
            .take(8)
            .map(|&a| world.host(a).ip)
            .collect();
        let plan = FaultPlan::new(Seed(351), FaultProfile::Hostile);
        let res = Resilience::with_plan(&plan);
        let (outcomes, report) = ipgeo::million::campaign(&world, &net, &res, &vps, &targets, 5, 9);
        let shape: Vec<_> = outcomes
            .iter()
            .map(|o| {
                (
                    o.measurements,
                    o.selected_vps.clone(),
                    o.cbg
                        .as_ref()
                        .map(|r| (r.estimate.lat().to_bits(), r.estimate.lon().to_bits())),
                )
            })
            .collect();
        (shape, report)
    };
    std::env::set_var("IPGEO_THREADS", "1");
    let serial = run();
    std::env::set_var("IPGEO_THREADS", "8");
    let parallel = run();
    std::env::remove_var("IPGEO_THREADS");
    assert_eq!(serial.0, parallel.0, "outcomes differ across thread counts");
    assert_eq!(serial.1, parallel.1, "campaign report differs");
    assert!(serial.1.faults.total() > 0, "hostile plan never fired");
}
