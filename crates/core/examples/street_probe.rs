// Timing measurement is this code's purpose; the workspace bans
// wall-clock reads by default (see clippy.toml).
#![allow(clippy::disallowed_methods)]
use geo_model::rng::Seed;
use geo_model::stats;
use ipgeo::street::{geolocate, StreetConfig};
use net_sim::Network;
use web_sim::ecosystem::{WebConfig, WebEcosystem};
use world_sim::{World, WorldConfig};

fn main() {
    let t0 = std::time::Instant::now();
    let mut w = World::generate(WorldConfig::paper(Seed(2023))).unwrap();
    let eco = WebEcosystem::generate(&mut w, &WebConfig::default()).unwrap();
    println!(
        "world+eco in {:?}; entities={} websites={}",
        t0.elapsed(),
        eco.entities.len(),
        eco.websites.len()
    );
    let net = Network::new(Seed(2023));
    let clean: Vec<_> = w
        .anchors
        .iter()
        .copied()
        .filter(|&a| !w.host(a).is_mis_geolocated())
        .collect();
    let mut errs = Vec::new();
    let mut lm_counts = Vec::new();
    let mut neg_fracs = Vec::new();
    let mut times = Vec::new();
    let t1 = std::time::Instant::now();
    for (i, &target) in clean.iter().enumerate().take(40) {
        let vps: Vec<_> = clean.iter().copied().filter(|&a| a != target).collect();
        let out = geolocate(
            &w,
            &net,
            &eco,
            &vps,
            target,
            &StreetConfig::default(),
            i as u64,
        );
        let th = w.host(target);
        if let Some(est) = out.estimate {
            errs.push(est.distance(&th.location).value());
        }
        lm_counts.push(out.landmarks.len() as f64);
        let measured: Vec<&_> = out
            .landmarks
            .iter()
            .filter(|l| l.delay_ms.is_some())
            .collect();
        if !measured.is_empty() {
            let neg = measured
                .iter()
                .filter(|l| l.delay_ms.unwrap() < 0.0)
                .count();
            neg_fracs.push(neg as f64 / measured.len() as f64);
        }
        times.push(out.virtual_secs);
    }
    println!("40 targets in {:?}", t1.elapsed());
    println!(
        "street err: median {:.1} km, <=40km {:.2}",
        stats::median(&errs).unwrap(),
        stats::fraction_at_most(&errs, 40.0)
    );
    println!(
        "landmarks/target: median {:.0}",
        stats::median(&lm_counts).unwrap()
    );
    println!(
        "neg d1d2 frac: median {:.2}",
        stats::median(&neg_fracs).unwrap_or(f64::NAN)
    );
    println!("virtual secs: median {:.0}", stats::median(&times).unwrap());
}
