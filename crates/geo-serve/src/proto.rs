//! The binary pipelined query protocol (IGQP — Internet Geolocation
//! Query Protocol).
//!
//! The line protocol costs one text round-trip per query; serving heavy
//! traffic needs batched queries and pipelined frames. An IGQP frame is
//! length-prefixed, versioned, and checksummed the same way `.igds`
//! snapshots are (FNV-1a over every preceding frame byte):
//!
//! ```text
//! request frame
//!   magic      u8        0xB7 (never a printable ASCII command byte,
//!                         so one connection can speak either protocol:
//!                         the first byte picks the mode)
//!   version    u8        protocol revision (currently 3)
//!   opcode     u8        1 = LOCATE, 2 = NEAREST, 3 = STATS
//!   reserved   u8        0
//!   body_len   u32 LE    payload bytes (≤ MAX_BODY)
//!   body                 LOCATE/NEAREST: body_len/4 × u32 LE addresses
//!                        STATS: empty
//!   checksum   u64 LE    FNV-1a over every byte above
//!
//! response frame
//!   magic      u8        0xB8
//!   version    u8        3
//!   opcode     u8        echo of the request opcode
//!   status     u8        0 = ok, 1 = error (body is a UTF-8 message),
//!                        2 = busy (server shedding load; empty body,
//!                        connection closes after the frame)
//!   body_len   u32 LE
//!   body                 LOCATE/NEAREST: body_len/34 × record
//!                        STATS: 10 × u64 LE (entries, hits, misses,
//!                        connections, generation, live, shed,
//!                        evicted, proto_errors, reload_failed)
//!   checksum   u64 LE    FNV-1a over every byte above
//!
//! location record (34 bytes)
//!   hit        u8        1 = served from the dataset, 0 = miss
//!   prefix     u32 LE    the answering /24 (the queried /24 on a miss)
//!   lat        u64 LE    f64 bit pattern (0 on a miss)
//!   lon        u64 LE    f64 bit pattern (0 on a miss)
//!   method     u8        `.igds` evidence tag (0..=4; 0 on a miss)
//!   distance   u32 LE    /24 steps to the answer (NEAREST; 0 exact)
//!   confidence u64 LE    f64 bit pattern of the entry's confidence
//!                        (fused entries carry their fusion score,
//!                        legacy entries their class prior; 0 on a miss)
//! ```
//!
//! Protocol revision 2 widened the record with the confidence column;
//! revision 3 widened the STATS body with the robustness counters
//! (generation, live, shed, evicted, proto_errors, reload_failed) so
//! binary ops tooling observes shedding and evictions with the same
//! fidelity as the text `STATS` line. Older-revision frames are
//! rejected with `BadVersion`.
//!
//! Responses to a batch preserve query order, one record per queried
//! address; frames on one connection are answered in arrival order. Both
//! facts together make the response byte stream a pure function of
//! (snapshot, request stream), independent of worker count, connection
//! interleaving, or pipelining depth — determinism lives in the
//! *responses*, never in the scheduling.
//!
//! The decoder trusts nothing: magic, version, opcode, the reserved
//! byte, a hard `body_len` budget (a hostile length field cannot force
//! an allocation), record-size divisibility, and the trailing checksum
//! are all validated with typed [`ProtoError`]s — no panics on any byte
//! soup, property-tested the same way `.igds` decode is.

use crate::format::fnv1a;
use geo_model::ip::{Ipv4, Prefix24};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// First byte of every request frame.
pub const REQ_MAGIC: u8 = 0xB7;
/// First byte of every response frame.
pub const RESP_MAGIC: u8 = 0xB8;
/// Current protocol revision (3: robustness counters in the STATS body;
/// 2 added the confidence column in location records).
pub const PROTO_VERSION: u8 = 3;
/// Fixed byte length of a frame header (either direction).
pub const HEADER_LEN: usize = 8;
/// Byte length of the trailing checksum.
pub const CHECKSUM_LEN: usize = 8;
/// Hard upper bound on a frame body. A LOCATE batch tops out at
/// `MAX_BODY / 4` addresses; anything claiming more is rejected before
/// any allocation happens.
pub const MAX_BODY: usize = 256 * 1024;
/// Byte length of one location record in a response body.
pub const RECORD_LEN: usize = 34;
/// Byte length of a STATS response body (10 × u64 LE).
pub const STATS_BODY_LEN: usize = 80;
/// Response status byte: the request was answered.
pub const STATUS_OK: u8 = 0;
/// Response status byte: the frame was rejected (body is the message).
pub const STATUS_ERROR: u8 = 1;
/// Response status byte: the server is at its connection cap and is
/// shedding this connection. The body is empty and the server closes
/// the connection right after the frame.
pub const STATUS_BUSY: u8 = 2;

/// Frame opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Exact-`/24` batch lookup.
    Locate = 1,
    /// Nearest-covering-prefix batch lookup.
    Nearest = 2,
    /// Server counters.
    Stats = 3,
}

impl Opcode {
    fn from_byte(b: u8) -> Option<Opcode> {
        match b {
            1 => Some(Opcode::Locate),
            2 => Some(Opcode::Nearest),
            3 => Some(Opcode::Stats),
            _ => None,
        }
    }
}

/// Everything that can be wrong with a frame. Every variant is a typed
/// error the server answers (or closes on) without panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The first byte is not the expected frame magic.
    BadMagic(u8),
    /// Unsupported protocol revision.
    BadVersion(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// The reserved header byte is not zero.
    BadReserved(u8),
    /// `body_len` exceeds [`MAX_BODY`].
    BodyTooLarge {
        /// Claimed body length.
        claimed: usize,
    },
    /// The body length is not valid for the opcode (not a multiple of
    /// the record size, or non-empty for STATS).
    BadBodyLen {
        /// The opcode whose body is malformed.
        opcode: u8,
        /// Claimed body length.
        body_len: usize,
    },
    /// The frame does not hash to its trailing checksum.
    ChecksumMismatch {
        /// Checksum stored in the frame.
        stored: u64,
        /// Checksum of the frame as read.
        computed: u64,
    },
    /// A response status byte outside the known set (ok/error/busy).
    BadStatus(u8),
    /// A response error message is not valid UTF-8.
    BadUtf8,
    /// A record's hit byte is neither 0 nor 1.
    BadHitByte(u8),
    /// A record's prefix uses more than 24 bits.
    BadPrefix(u32),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::BadMagic(b) => write!(f, "not an IGQP frame (first byte {b:#04x})"),
            ProtoError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported IGQP version {v} (supported: {PROTO_VERSION})"
                )
            }
            ProtoError::BadOpcode(o) => {
                write!(f, "unknown opcode {o} (LOCATE=1 NEAREST=2 STATS=3)")
            }
            ProtoError::BadReserved(b) => write!(f, "reserved header byte is {b:#04x}, not 0"),
            ProtoError::BodyTooLarge { claimed } => {
                write!(
                    f,
                    "frame body of {claimed} bytes exceeds the {MAX_BODY}-byte budget"
                )
            }
            ProtoError::BadBodyLen { opcode, body_len } => {
                write!(
                    f,
                    "body of {body_len} bytes is malformed for opcode {opcode}"
                )
            }
            ProtoError::ChecksumMismatch { stored, computed } => write!(
                f,
                "corrupt frame: checksum {computed:016x}, frame says {stored:016x}"
            ),
            ProtoError::BadStatus(s) => {
                write!(f, "response status {s} is not ok/error/busy")
            }
            ProtoError::BadUtf8 => write!(f, "error message is not UTF-8"),
            ProtoError::BadHitByte(b) => write!(f, "record hit byte {b} is neither 0 nor 1"),
            ProtoError::BadPrefix(p) => write!(f, "record prefix {p:#x} exceeds 24 bits"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Exact-`/24` lookups, answered in order.
    Locate(Vec<Ipv4>),
    /// Nearest-covering-prefix lookups, answered in order.
    Nearest(Vec<Ipv4>),
    /// Server counters.
    Stats,
}

/// One location answer in a response body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocateRecord {
    /// True when the dataset answered (exact or nearest).
    pub hit: bool,
    /// The answering prefix (the queried `/24` on a miss).
    pub prefix: Prefix24,
    /// Latitude bit pattern (0 on a miss).
    pub lat_bits: u64,
    /// Longitude bit pattern (0 on a miss).
    pub lon_bits: u64,
    /// `.igds` evidence tag (0 on a miss).
    pub method: u8,
    /// Distance to the answer in /24 steps (0 for exact hits).
    pub distance: u32,
    /// Confidence bit pattern of the answering entry (0 on a miss).
    pub confidence_bits: u64,
}

impl LocateRecord {
    /// The canonical miss record for a queried address.
    pub fn miss(queried: Ipv4) -> LocateRecord {
        LocateRecord {
            hit: false,
            prefix: queried.prefix24(),
            lat_bits: 0,
            lon_bits: 0,
            method: 0,
            distance: 0,
            confidence_bits: 0,
        }
    }

    /// Latitude in degrees.
    pub fn lat(&self) -> f64 {
        f64::from_bits(self.lat_bits)
    }

    /// Longitude in degrees.
    pub fn lon(&self) -> f64 {
        f64::from_bits(self.lon_bits)
    }

    /// Confidence in `[0, 1]` (0 on a miss).
    pub fn confidence(&self) -> f64 {
        f64::from_bits(self.confidence_bits)
    }
}

/// Server counters as carried by a STATS response. Revision 3 carries
/// every monotonic counter the text `STATS` line reports (wall-clock
/// derived figures — uptime, qps — are deliberately text-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsRecord {
    /// Prefixes in the served snapshot.
    pub entries: u64,
    /// Queries answered from the store.
    pub hits: u64,
    /// Queries with no covering entry.
    pub misses: u64,
    /// Connections accepted so far.
    pub connections: u64,
    /// Live snapshot generation number (increments on every reload).
    pub generation: u64,
    /// Connections currently registered.
    pub live: u64,
    /// Connections answered `BUSY` over a connection cap.
    pub shed: u64,
    /// Forced closes, all eviction reasons summed.
    pub evicted: u64,
    /// Malformed binary frames answered with a typed error.
    pub proto_errors: u64,
    /// Background `RELOAD` loads that failed (generation unchanged).
    pub reload_failed: u64,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ordered location answers to a LOCATE/NEAREST batch.
    Records {
        /// The echoed request opcode.
        opcode: Opcode,
        /// One record per queried address, in query order.
        records: Vec<LocateRecord>,
    },
    /// Counters answering STATS.
    Stats(StatsRecord),
    /// The server rejected the frame.
    Error(String),
    /// The server is shedding load; the connection closes after this.
    Busy,
}

/// Outcome of decoding a byte buffer that may hold a partial frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Decoded<T> {
    /// A complete frame and the number of bytes it consumed.
    Frame(T, usize),
    /// The buffer holds a valid prefix of a frame; read more bytes.
    NeedMore,
}

// geo-lint: allow(R1T, reason = "length-checked by every caller: decode_header/check_frame verify the buffer covers the read before calling")
fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

// geo-lint: allow(R1T, reason = "length-checked by every caller: check_frame verifies HEADER_LEN + body_len + CHECKSUM_LEN bytes are present")
fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes([
        b[at],
        b[at + 1],
        b[at + 2],
        b[at + 3],
        b[at + 4],
        b[at + 5],
        b[at + 6],
        b[at + 7],
    ])
}

/// Validates the fixed header shared by both frame directions; returns
/// `(version, opcode_byte, status_or_reserved, body_len)` once enough
/// bytes are present. The caller interprets byte 3 per direction.
// geo-lint: allow(R1T, reason = "fixed-offset reads are guarded by the `buf.len() < HEADER_LEN` NeedMore return above them")
fn decode_header(buf: &[u8], magic: u8) -> Result<Decoded<(u8, u8, u8, usize)>, ProtoError> {
    let Some(&first) = buf.first() else {
        return Ok(Decoded::NeedMore);
    };
    if first != magic {
        return Err(ProtoError::BadMagic(first));
    }
    if buf.len() < HEADER_LEN {
        return Ok(Decoded::NeedMore);
    }
    if buf[1] != PROTO_VERSION {
        return Err(ProtoError::BadVersion(buf[1]));
    }
    let body_len = read_u32(buf, 4) as usize;
    if body_len > MAX_BODY {
        return Err(ProtoError::BodyTooLarge { claimed: body_len });
    }
    Ok(Decoded::Frame((buf[1], buf[2], buf[3], body_len), 0))
}

/// Checks a complete frame's trailing checksum.
// geo-lint: allow(R1T, reason = "slice and checksum read are guarded by the `buf.len() < total` NeedMore return")
fn check_frame(buf: &[u8], body_len: usize) -> Result<Decoded<()>, ProtoError> {
    let total = HEADER_LEN + body_len + CHECKSUM_LEN;
    if buf.len() < total {
        return Ok(Decoded::NeedMore);
    }
    let stored = read_u64(buf, HEADER_LEN + body_len);
    let computed = fnv1a(&buf[..HEADER_LEN + body_len]);
    if stored != computed {
        return Err(ProtoError::ChecksumMismatch { stored, computed });
    }
    Ok(Decoded::Frame((), total))
}

/// Decodes one request frame from the front of `buf`, if complete.
// geo-lint: allow(R1T, reason = "body slice is taken only after check_frame confirms the full frame is buffered")
pub fn try_decode_request(buf: &[u8]) -> Result<Decoded<Request>, ProtoError> {
    let (_, op_byte, reserved, body_len) = match decode_header(buf, REQ_MAGIC)? {
        Decoded::Frame(h, _) => h,
        Decoded::NeedMore => return Ok(Decoded::NeedMore),
    };
    let Some(opcode) = Opcode::from_byte(op_byte) else {
        return Err(ProtoError::BadOpcode(op_byte));
    };
    if reserved != 0 {
        return Err(ProtoError::BadReserved(reserved));
    }
    match opcode {
        Opcode::Locate | Opcode::Nearest if body_len % 4 != 0 => {
            return Err(ProtoError::BadBodyLen {
                opcode: op_byte,
                body_len,
            })
        }
        Opcode::Stats if body_len != 0 => {
            return Err(ProtoError::BadBodyLen {
                opcode: op_byte,
                body_len,
            })
        }
        _ => {}
    }
    let total = match check_frame(buf, body_len)? {
        Decoded::Frame((), total) => total,
        Decoded::NeedMore => return Ok(Decoded::NeedMore),
    };
    let body = &buf[HEADER_LEN..HEADER_LEN + body_len];
    let req = match opcode {
        Opcode::Stats => Request::Stats,
        Opcode::Locate | Opcode::Nearest => {
            let ips: Vec<Ipv4> = (0..body_len / 4)
                .map(|i| Ipv4(read_u32(body, i * 4)))
                .collect();
            if opcode == Opcode::Locate {
                Request::Locate(ips)
            } else {
                Request::Nearest(ips)
            }
        }
    };
    Ok(Decoded::Frame(req, total))
}

/// Decodes one response frame from the front of `buf`, if complete.
pub fn try_decode_response(buf: &[u8]) -> Result<Decoded<Response>, ProtoError> {
    let (_, op_byte, status, body_len) = match decode_header(buf, RESP_MAGIC)? {
        Decoded::Frame(h, _) => h,
        Decoded::NeedMore => return Ok(Decoded::NeedMore),
    };
    let Some(opcode) = Opcode::from_byte(op_byte) else {
        return Err(ProtoError::BadOpcode(op_byte));
    };
    match status {
        STATUS_OK => match opcode {
            Opcode::Locate | Opcode::Nearest if body_len % RECORD_LEN != 0 => {
                return Err(ProtoError::BadBodyLen {
                    opcode: op_byte,
                    body_len,
                })
            }
            Opcode::Stats if body_len != STATS_BODY_LEN => {
                return Err(ProtoError::BadBodyLen {
                    opcode: op_byte,
                    body_len,
                })
            }
            _ => {}
        },
        STATUS_ERROR => {}
        STATUS_BUSY if body_len != 0 => {
            return Err(ProtoError::BadBodyLen {
                opcode: op_byte,
                body_len,
            })
        }
        STATUS_BUSY => {}
        other => return Err(ProtoError::BadStatus(other)),
    }
    let total = match check_frame(buf, body_len)? {
        Decoded::Frame((), total) => total,
        Decoded::NeedMore => return Ok(Decoded::NeedMore),
    };
    let body = &buf[HEADER_LEN..HEADER_LEN + body_len];
    if status == STATUS_BUSY {
        return Ok(Decoded::Frame(Response::Busy, total));
    }
    if status == STATUS_ERROR {
        let msg = std::str::from_utf8(body).map_err(|_| ProtoError::BadUtf8)?;
        return Ok(Decoded::Frame(Response::Error(msg.to_string()), total));
    }
    let resp = match opcode {
        Opcode::Stats => Response::Stats(StatsRecord {
            entries: read_u64(body, 0),
            hits: read_u64(body, 8),
            misses: read_u64(body, 16),
            connections: read_u64(body, 24),
            generation: read_u64(body, 32),
            live: read_u64(body, 40),
            shed: read_u64(body, 48),
            evicted: read_u64(body, 56),
            proto_errors: read_u64(body, 64),
            reload_failed: read_u64(body, 72),
        }),
        Opcode::Locate | Opcode::Nearest => {
            let mut records = Vec::with_capacity(body_len / RECORD_LEN);
            for i in 0..body_len / RECORD_LEN {
                let at = i * RECORD_LEN;
                let hit = match body[at] {
                    0 => false,
                    1 => true,
                    other => return Err(ProtoError::BadHitByte(other)),
                };
                let prefix = read_u32(body, at + 1);
                if prefix > 0x00FF_FFFF {
                    return Err(ProtoError::BadPrefix(prefix));
                }
                records.push(LocateRecord {
                    hit,
                    prefix: Prefix24(prefix),
                    lat_bits: read_u64(body, at + 5),
                    lon_bits: read_u64(body, at + 13),
                    method: body[at + 21],
                    distance: read_u32(body, at + 22),
                    confidence_bits: read_u64(body, at + 26),
                });
            }
            Response::Records { opcode, records }
        }
    };
    Ok(Decoded::Frame(resp, total))
}

/// Appends one request frame for `ips` (ignored for STATS) to `out`.
/// Fails only when the batch would exceed the [`MAX_BODY`] budget.
pub fn encode_request(out: &mut Vec<u8>, opcode: Opcode, ips: &[Ipv4]) -> Result<(), ProtoError> {
    let body_len = match opcode {
        Opcode::Stats => 0,
        Opcode::Locate | Opcode::Nearest => ips.len() * 4,
    };
    if body_len > MAX_BODY {
        return Err(ProtoError::BodyTooLarge { claimed: body_len });
    }
    let start = out.len();
    out.reserve(HEADER_LEN + body_len + CHECKSUM_LEN);
    out.extend_from_slice(&[REQ_MAGIC, PROTO_VERSION, opcode as u8, 0]);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    if opcode != Opcode::Stats {
        for ip in ips {
            out.extend_from_slice(&ip.0.to_le_bytes());
        }
    }
    let sum = fnv1a(&out[start..]);
    out.extend_from_slice(&sum.to_le_bytes());
    Ok(())
}

/// An in-progress response frame being appended to a connection's output
/// buffer. Created by [`ResponseWriter::begin`]; the header's `body_len`
/// and the trailing checksum are patched in by [`ResponseWriter::finish`],
/// so records stream straight into the final buffer with no staging copy.
pub struct ResponseWriter {
    start: usize,
}

impl ResponseWriter {
    /// Opens a response frame (status 0) on `out`.
    pub fn begin(out: &mut Vec<u8>, opcode: Opcode) -> ResponseWriter {
        Self::begin_with_status(out, opcode, STATUS_OK)
    }

    fn begin_with_status(out: &mut Vec<u8>, opcode: Opcode, status: u8) -> ResponseWriter {
        let start = out.len();
        out.extend_from_slice(&[RESP_MAGIC, PROTO_VERSION, opcode as u8, status]);
        out.extend_from_slice(&0u32.to_le_bytes());
        ResponseWriter { start }
    }

    /// Appends one location record to the open frame.
    pub fn push_record(&self, out: &mut Vec<u8>, rec: &LocateRecord) {
        out.push(u8::from(rec.hit));
        out.extend_from_slice(&rec.prefix.0.to_le_bytes());
        out.extend_from_slice(&rec.lat_bits.to_le_bytes());
        out.extend_from_slice(&rec.lon_bits.to_le_bytes());
        out.push(rec.method);
        out.extend_from_slice(&rec.distance.to_le_bytes());
        out.extend_from_slice(&rec.confidence_bits.to_le_bytes());
    }

    /// Appends a STATS body to the open frame.
    pub fn push_stats(&self, out: &mut Vec<u8>, stats: &StatsRecord) {
        out.extend_from_slice(&stats.entries.to_le_bytes());
        out.extend_from_slice(&stats.hits.to_le_bytes());
        out.extend_from_slice(&stats.misses.to_le_bytes());
        out.extend_from_slice(&stats.connections.to_le_bytes());
        out.extend_from_slice(&stats.generation.to_le_bytes());
        out.extend_from_slice(&stats.live.to_le_bytes());
        out.extend_from_slice(&stats.shed.to_le_bytes());
        out.extend_from_slice(&stats.evicted.to_le_bytes());
        out.extend_from_slice(&stats.proto_errors.to_le_bytes());
        out.extend_from_slice(&stats.reload_failed.to_le_bytes());
    }

    /// Patches `body_len`, appends the checksum, and seals the frame.
    // geo-lint: allow(R1T, reason = "begin() wrote HEADER_LEN bytes at `start`, so the patched range exists by construction")
    pub fn finish(self, out: &mut Vec<u8>) {
        let body_len = out.len() - self.start - HEADER_LEN;
        let len_bytes = (body_len as u32).to_le_bytes();
        out[self.start + 4..self.start + 8].copy_from_slice(&len_bytes);
        let sum = fnv1a(&out[self.start..]);
        out.extend_from_slice(&sum.to_le_bytes());
    }
}

/// Appends a complete error response frame to `out`.
pub fn encode_error(out: &mut Vec<u8>, opcode: Opcode, message: &str) {
    let w = ResponseWriter::begin_with_status(out, opcode, STATUS_ERROR);
    out.extend_from_slice(message.as_bytes());
    w.finish(out);
}

/// Appends a complete BUSY (overload-shed) response frame to `out`.
/// The body is empty: a shed client learns everything it needs from the
/// status byte, and the server closes the connection right after.
pub fn encode_busy(out: &mut Vec<u8>, opcode: Opcode) {
    let w = ResponseWriter::begin_with_status(out, opcode, STATUS_BUSY);
    w.finish(out);
}

/// A client-side failure: transport or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// The server's bytes did not decode as a response frame.
    Proto(ProtoError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

/// A blocking binary-protocol client over one TCP connection.
///
/// [`send`](BinaryClient::send) and [`recv`](BinaryClient::recv) are
/// split so callers can pipeline: any number of frames may be in flight,
/// and responses come back in send order. This is the `ipgeo query
/// --binary` path and the load generator's primitive — a *client*, not
/// the serving path, which is why its blocking reads carry R4 allows.
pub struct BinaryClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl BinaryClient {
    /// Connects with `TCP_NODELAY` (frames are written whole; leaving
    /// Nagle on would add ~40 ms to every pipelined exchange).
    pub fn connect(addr: &str) -> io::Result<BinaryClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(BinaryClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request frame (does not wait for the response).
    pub fn send(&mut self, opcode: Opcode, ips: &[Ipv4]) -> Result<(), ClientError> {
        self.buf.clear();
        encode_request(&mut self.buf, opcode, ips)?;
        self.stream.write_all(&self.buf)?;
        Ok(())
    }

    /// Sends pre-encoded frame bytes (the load generator's hot path:
    /// frames are encoded once up front, outside the timed window).
    pub fn send_raw(&mut self, frame: &[u8]) -> io::Result<()> {
        self.stream.write_all(frame)
    }

    /// Blocks until the next response frame arrives and decodes it.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let mut header = [0u8; HEADER_LEN];
        // geo-lint: allow(R4, reason = "blocking read in the one-shot client primitive, not the serving path")
        self.stream.read_exact(&mut header)?;
        match decode_header(&header, RESP_MAGIC)? {
            Decoded::Frame(_, _) => {}
            // A full header is present by construction.
            Decoded::NeedMore => return Err(ProtoError::BadMagic(header[0]).into()),
        }
        let body_len = read_u32(&header, 4) as usize;
        self.buf.clear();
        self.buf.extend_from_slice(&header);
        self.buf.resize(HEADER_LEN + body_len + CHECKSUM_LEN, 0);
        // geo-lint: allow(R4, reason = "blocking read in the one-shot client primitive, not the serving path")
        self.stream.read_exact(&mut self.buf[HEADER_LEN..])?;
        match try_decode_response(&self.buf)? {
            Decoded::Frame(resp, _) => Ok(resp),
            // The exact frame length was read above.
            Decoded::NeedMore => Err(ProtoError::BadMagic(header[0]).into()),
        }
    }

    /// Convenience request/response round trip.
    pub fn query(&mut self, opcode: Opcode, ips: &[Ipv4]) -> Result<Response, ClientError> {
        self.send(opcode, ips)?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ips(n: u32) -> Vec<Ipv4> {
        (0..n).map(|i| Prefix24(i * 3 + 1).host(7)).collect()
    }

    #[test]
    fn request_round_trips() {
        for (op, want) in [
            (Opcode::Locate, Request::Locate(ips(5))),
            (Opcode::Nearest, Request::Nearest(ips(5))),
        ] {
            let mut buf = Vec::new();
            encode_request(&mut buf, op, &ips(5)).unwrap();
            let Decoded::Frame(req, used) = try_decode_request(&buf).unwrap() else {
                panic!("complete frame must decode");
            };
            assert_eq!(used, buf.len());
            assert_eq!(req, want);
        }
        let mut buf = Vec::new();
        encode_request(&mut buf, Opcode::Stats, &[]).unwrap();
        assert_eq!(
            try_decode_request(&buf).unwrap(),
            Decoded::Frame(Request::Stats, buf.len())
        );
    }

    #[test]
    fn pipelined_frames_decode_in_sequence() {
        let mut buf = Vec::new();
        encode_request(&mut buf, Opcode::Locate, &ips(3)).unwrap();
        let first_len = buf.len();
        encode_request(&mut buf, Opcode::Stats, &[]).unwrap();
        let Decoded::Frame(first, used) = try_decode_request(&buf).unwrap() else {
            panic!("first frame");
        };
        assert_eq!(first, Request::Locate(ips(3)));
        assert_eq!(used, first_len);
        let Decoded::Frame(second, _) = try_decode_request(&buf[used..]).unwrap() else {
            panic!("second frame");
        };
        assert_eq!(second, Request::Stats);
    }

    #[test]
    fn response_round_trips() {
        let records = vec![
            LocateRecord {
                hit: true,
                prefix: Prefix24(0x0A0A0A),
                lat_bits: 48.85f64.to_bits(),
                lon_bits: 2.35f64.to_bits(),
                method: 1,
                distance: 0,
                confidence_bits: 0.90f64.to_bits(),
            },
            LocateRecord::miss(Ipv4(0x0909_0909)),
        ];
        let mut buf = Vec::new();
        let w = ResponseWriter::begin(&mut buf, Opcode::Locate);
        for r in &records {
            w.push_record(&mut buf, r);
        }
        w.finish(&mut buf);
        let Decoded::Frame(resp, used) = try_decode_response(&buf).unwrap() else {
            panic!("complete frame must decode");
        };
        assert_eq!(used, buf.len());
        assert_eq!(
            resp,
            Response::Records {
                opcode: Opcode::Locate,
                records
            }
        );
    }

    #[test]
    fn stats_and_error_responses_round_trip() {
        let stats = StatsRecord {
            entries: 30,
            hits: 1000,
            misses: 7,
            connections: 12,
            generation: 3,
            live: 5,
            shed: 2,
            evicted: 4,
            proto_errors: 1,
            reload_failed: 6,
        };
        let mut buf = Vec::new();
        let w = ResponseWriter::begin(&mut buf, Opcode::Stats);
        w.push_stats(&mut buf, &stats);
        w.finish(&mut buf);
        assert_eq!(
            try_decode_response(&buf).unwrap(),
            Decoded::Frame(Response::Stats(stats), buf.len())
        );

        let mut buf = Vec::new();
        encode_error(&mut buf, Opcode::Locate, "no such thing");
        assert_eq!(
            try_decode_response(&buf).unwrap(),
            Decoded::Frame(Response::Error("no such thing".into()), buf.len())
        );
    }

    #[test]
    fn busy_response_round_trips_and_rejects_a_body() {
        let mut buf = Vec::new();
        encode_busy(&mut buf, Opcode::Locate);
        assert_eq!(
            try_decode_response(&buf).unwrap(),
            Decoded::Frame(Response::Busy, buf.len())
        );

        // A BUSY frame smuggling a body is malformed...
        let mut with_body = Vec::new();
        let w = ResponseWriter::begin_with_status(&mut with_body, Opcode::Locate, STATUS_BUSY);
        with_body.extend_from_slice(b"go away");
        w.finish(&mut with_body);
        assert!(matches!(
            try_decode_response(&with_body),
            Err(ProtoError::BadBodyLen { .. })
        ));

        // ...and an unknown status byte is its own typed error.
        let mut unknown = Vec::new();
        let w = ResponseWriter::begin_with_status(&mut unknown, Opcode::Locate, 7);
        w.finish(&mut unknown);
        assert_eq!(try_decode_response(&unknown), Err(ProtoError::BadStatus(7)));
    }

    #[test]
    fn truncations_ask_for_more_and_never_panic() {
        let mut buf = Vec::new();
        encode_request(&mut buf, Opcode::Locate, &ips(9)).unwrap();
        for len in 0..buf.len() {
            assert_eq!(
                try_decode_request(&buf[..len]).unwrap(),
                Decoded::NeedMore,
                "a {len}-byte prefix of a valid frame is just incomplete"
            );
        }
    }

    #[test]
    fn corruption_is_a_typed_error() {
        let mut good = Vec::new();
        encode_request(&mut good, Opcode::Locate, &ips(4)).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'L';
        assert_eq!(
            try_decode_request(&bad_magic),
            Err(ProtoError::BadMagic(b'L'))
        );

        let mut bad_version = good.clone();
        bad_version[1] = 9;
        assert_eq!(
            try_decode_request(&bad_version),
            Err(ProtoError::BadVersion(9))
        );

        let mut bad_opcode = good.clone();
        bad_opcode[2] = 77;
        assert!(matches!(
            try_decode_request(&bad_opcode),
            Err(ProtoError::BadOpcode(77) | ProtoError::ChecksumMismatch { .. })
        ));

        let mut hostile_len = good.clone();
        hostile_len[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            try_decode_request(&hostile_len),
            Err(ProtoError::BodyTooLarge {
                claimed: u32::MAX as usize
            })
        );

        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        assert!(matches!(
            try_decode_request(&flipped),
            Err(ProtoError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn oversized_batch_is_rejected_at_encode_time() {
        let too_many = vec![Ipv4(1); MAX_BODY / 4 + 1];
        let mut buf = Vec::new();
        assert!(matches!(
            encode_request(&mut buf, Opcode::Locate, &too_many),
            Err(ProtoError::BodyTooLarge { .. })
        ));
    }
}
