//! Coverage/accuracy manifest of a snapshot — the paper's three criteria
//! (accurate, complete, explainable) summarized for one `.igds` file.

use crate::store::DatasetStore;
use geo_model::stats;
use std::fmt;
use world_sim::World;

/// Accuracy of the snapshot against the generating world's ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracySummary {
    /// Entries with a ground-truth anchor in the world.
    pub scored: usize,
    /// Median error in kilometers.
    pub median_km: f64,
    /// Fraction within 40 km ("city level" in the paper's evaluation).
    pub city_level: f64,
}

/// What a snapshot covers and how it was derived.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// World seed recorded in the header.
    pub world_seed: u64,
    /// Campaign nonce recorded in the header.
    pub nonce: u64,
    /// Number of prefixes.
    pub entries: usize,
    /// `(method, count)` per evidence class, most common first.
    pub methods: Vec<(&'static str, usize)>,
    /// Accuracy against ground truth, when a world was supplied.
    pub accuracy: Option<AccuracySummary>,
}

impl Manifest {
    /// Summarizes coverage and the evidence mix of a store.
    pub fn of(store: &DatasetStore) -> Manifest {
        let mut methods: Vec<(&'static str, usize)> = Vec::new();
        for e in store.entries() {
            let m = e.evidence.method();
            match methods.iter_mut().find(|(name, _)| *name == m) {
                Some((_, n)) => *n += 1,
                None => methods.push((m, 1)),
            }
        }
        methods.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        Manifest {
            world_seed: store.header().world_seed,
            nonce: store.header().nonce,
            entries: store.len(),
            methods,
            accuracy: None,
        }
    }

    /// Adds ground-truth accuracy: each entry is scored against the
    /// anchor of its prefix in `world` (entries without one are skipped).
    pub fn with_accuracy(store: &DatasetStore, world: &World) -> Manifest {
        let mut manifest = Manifest::of(store);
        let errors: Vec<f64> = store
            .entries()
            .iter()
            .filter_map(|e| {
                let anchor = world
                    .anchors
                    .iter()
                    .map(|&a| world.host(a))
                    .find(|h| h.ip.prefix24() == e.prefix)?;
                Some(e.location.distance(&anchor.location).value())
            })
            .collect();
        if !errors.is_empty() {
            manifest.accuracy = Some(AccuracySummary {
                scored: errors.len(),
                median_km: stats::median(&errors).unwrap_or(f64::NAN),
                city_level: stats::fraction_at_most(&errors, 40.0),
            });
        }
        manifest
    }
}

impl fmt::Display for Manifest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "manifest: {} prefixes (world seed {}, nonce {})",
            self.entries, self.world_seed, self.nonce
        )?;
        for (method, n) in &self.methods {
            let pct = 100.0 * *n as f64 / self.entries.max(1) as f64;
            writeln!(f, "  {method:<12} {n:>6} ({pct:.1}%)")?;
        }
        if let Some(a) = &self.accuracy {
            writeln!(
                f,
                "  accuracy: median {:.1} km, {:.0}% city-level over {} scored entries",
                a.median_km,
                100.0 * a.city_level,
                a.scored
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::ip::Prefix24;
    use geo_model::point::GeoPoint;
    use ipgeo::publish::{DatasetEntry, Evidence};

    #[test]
    fn counts_methods_most_common_first() {
        let entries = vec![
            DatasetEntry {
                prefix: Prefix24(1),
                location: GeoPoint::new(0.0, 0.0),
                evidence: Evidence::Whois,
            },
            DatasetEntry {
                prefix: Prefix24(2),
                location: GeoPoint::new(0.0, 0.0),
                evidence: Evidence::Whois,
            },
            DatasetEntry {
                prefix: Prefix24(3),
                location: GeoPoint::new(0.0, 0.0),
                evidence: Evidence::Geofeed,
            },
        ];
        let m = Manifest::of(&DatasetStore::from_entries(&entries, 11, 2));
        assert_eq!(m.entries, 3);
        assert_eq!(m.world_seed, 11);
        assert_eq!(m.methods, vec![("whois", 2), ("geofeed", 1)]);
        assert!(m.accuracy.is_none());
        let text = m.to_string();
        assert!(text.contains("whois"), "{text}");
        assert!(text.contains("66.7%"), "{text}");
    }
}
