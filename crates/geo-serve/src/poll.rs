//! The readiness poller the server's event-loop workers run on.
//!
//! The workspace denies `unsafe_code`, so epoll/kqueue are out of
//! reach; instead each worker sweeps its nonblocking sockets directly
//! and this module supplies everything *around* that sweep:
//!
//! - [`Registry`] — slot-indexed connection storage handing out
//!   deterministic [`Token`]s (lowest free slot wins, so token
//!   assignment is a pure function of the accept/close sequence);
//! - [`Interest`] — per-connection readiness interest, so a sweep
//!   skips connections that want nothing;
//! - [`Waker`]/[`Poller::wake_requested`] — the deterministic wake
//!   token: shutdown flips one shared atomic and every worker observes
//!   it at the top of its next sweep, replacing the old "dial a dummy
//!   connection to unblock `accept`" hack;
//! - [`Poller::idle_wait`] — adaptive backoff. A sweep that made
//!   progress resets the backoff to zero (the next sweep spins
//!   immediately); consecutive idle sweeps sleep exponentially longer
//!   up to a small cap, trading a bounded sliver of wake-up latency
//!   for not burning a core on an idle server. The cap is deliberately
//!   far below a millisecond so the serve path's p99 survives it;
//! - [`Registry::park`] — the connection-count-aware idle sweep. A
//!   connection idle for many consecutive sweeps is *parked*: it drops
//!   out of [`Registry::tokens`] (so the sweep stops issuing a syscall
//!   for it every iteration) onto a lazy re-arm list, and
//!   [`Registry::unpark_due`] returns it to the sweep a bounded number
//!   of sweeps later. Thousands of idle connections then cost ~no CPU
//!   per sweep while still getting their sockets re-polled (and their
//!   idle deadlines re-checked) within a fixed sweep budget.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Identifies one registered connection within a worker's [`Registry`].
///
/// Tokens are slot indices: freed slots are reused lowest-first, so for
/// a fixed accept/close sequence the token of every connection is fixed
/// too — useful when debugging an interleaving, and the reason registry
/// iteration order is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// What a connection wants from the next sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// The connection wants its socket read.
    pub readable: bool,
    /// The connection has buffered output to flush.
    pub writable: bool,
}

impl Interest {
    /// Interest in reads only (a fresh connection).
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// No interest at all; the sweep skips the connection.
    pub fn is_idle(self) -> bool {
        !self.readable && !self.writable
    }
}

/// One occupied registry slot.
#[derive(Debug)]
struct Slot<C> {
    conn: C,
    interest: Interest,
    /// Parked connections are skipped by [`Registry::tokens`] until
    /// [`Registry::unpark_due`] (or [`Registry::unpark_all`]) re-arms
    /// them.
    parked: bool,
}

/// Slot-indexed storage for a worker's connections.
///
/// A `Vec` of optional slots keeps tokens stable across unrelated closes
/// and reuses the lowest free slot on insert, bounding the vector at the
/// connection high-water mark.
#[derive(Debug)]
pub struct Registry<C> {
    slots: Vec<Option<Slot<C>>>,
    live: usize,
    parked: usize,
    /// Lazy re-arm list: `(slot, due_sweep)` in park order. Entries can
    /// go stale (the connection closed, or the slot was recycled); a
    /// stale entry un-parks at worst an unrelated fresh connection one
    /// sweep early, which costs one extra poll and nothing else.
    rearm: Vec<(usize, u64)>,
}

impl<C> Default for Registry<C> {
    fn default() -> Registry<C> {
        Registry::new()
    }
}

impl<C> Registry<C> {
    /// An empty registry.
    pub fn new() -> Registry<C> {
        Registry {
            slots: Vec::new(),
            live: 0,
            parked: 0,
            rearm: Vec::new(),
        }
    }

    /// Registers a connection, returning its token (lowest free slot).
    // geo-lint: allow(R1T, reason = "slot index comes from `position` over the same vec in the same &mut borrow")
    pub fn register(&mut self, conn: C, interest: Interest) -> Token {
        self.live += 1;
        let slot = Slot {
            conn,
            interest,
            parked: false,
        };
        match self.slots.iter().position(Option::is_none) {
            Some(i) => {
                self.slots[i] = Some(slot);
                Token(i)
            }
            None => {
                self.slots.push(Some(slot));
                Token(self.slots.len() - 1)
            }
        }
    }

    /// Removes and returns the connection behind `token`.
    pub fn deregister(&mut self, token: Token) -> Option<C> {
        let slot = self.slots.get_mut(token.0)?;
        let taken = slot.take();
        if let Some(s) = &taken {
            self.live -= 1;
            if s.parked {
                self.parked -= 1;
            }
        }
        taken.map(|s| s.conn)
    }

    /// Mutable access to a registered connection and its interest.
    pub fn get_mut(&mut self, token: Token) -> Option<(&mut C, &mut Interest)> {
        self.slots
            .get_mut(token.0)?
            .as_mut()
            .map(|s| (&mut s.conn, &mut s.interest))
    }

    /// Live connection count (parked connections included — they still
    /// hold sockets and count against every cap).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no connections are registered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Currently parked connection count.
    pub fn parked_len(&self) -> usize {
        self.parked
    }

    /// Tokens of all live *un-parked* connections, ascending — the
    /// sweep order.
    pub fn tokens(&self) -> Vec<Token> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Some(slot) if !slot.parked => Some(Token(i)),
                _ => None,
            })
            .collect()
    }

    /// Tokens of every live connection, parked or not, ascending —
    /// for cap accounting and drain-deadline eviction.
    pub fn all_tokens(&self) -> Vec<Token> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| Token(i)))
            .collect()
    }

    /// Parks `token` until sweep number `due_sweep`: it disappears from
    /// [`Registry::tokens`] and lands on the lazy re-arm list. Returns
    /// false for unknown or already-parked tokens.
    pub fn park(&mut self, token: Token, due_sweep: u64) -> bool {
        let Some(Some(slot)) = self.slots.get_mut(token.0) else {
            return false;
        };
        if slot.parked {
            return false;
        }
        slot.parked = true;
        self.parked += 1;
        self.rearm.push((token.0, due_sweep));
        true
    }

    /// Re-arms every parked connection whose due sweep has arrived.
    /// Call once at the top of each sweep with the current sweep number.
    pub fn unpark_due(&mut self, sweep: u64) {
        if self.parked == 0 {
            self.rearm.clear();
            return;
        }
        let mut rearm = std::mem::take(&mut self.rearm);
        rearm.retain(|&(slot_idx, due)| {
            if due > sweep {
                return true;
            }
            if let Some(Some(slot)) = self.slots.get_mut(slot_idx) {
                if slot.parked {
                    slot.parked = false;
                    self.parked -= 1;
                }
            }
            false
        });
        self.rearm = rearm;
    }

    /// Immediately re-arms every parked connection (drain shutdown wants
    /// every socket back in the sweep to flush and close it).
    pub fn unpark_all(&mut self) {
        self.rearm.clear();
        if self.parked == 0 {
            return;
        }
        for slot in self.slots.iter_mut().flatten() {
            slot.parked = false;
        }
        self.parked = 0;
    }
}

/// Flips the shared wake flag; any thread may hold one.
#[derive(Debug, Clone)]
pub struct Waker {
    flag: Arc<AtomicBool>,
}

impl Waker {
    /// Requests a wake-up: every poller sharing the flag returns from
    /// its current (or next) `idle_wait` and observes `wake_requested`.
    pub fn wake(&self) {
        self.flag.store(true, Ordering::Release);
    }
}

/// Per-worker sweep pacing plus the shared wake token.
#[derive(Debug)]
pub struct Poller {
    wake: Arc<AtomicBool>,
    /// Consecutive idle sweeps; drives the backoff exponent.
    idle_streak: u32,
}

/// Longest single `idle_wait` sleep. Small enough that a request
/// landing on a fully idle server still sees well-under-a-millisecond
/// added latency; large enough that an idle worker costs ~no CPU.
const MAX_IDLE_WAIT: Duration = Duration::from_micros(256);
/// First non-zero backoff step.
const BASE_IDLE_WAIT: Duration = Duration::from_micros(8);
/// Idle sweeps tolerated before the first sleep (pure spins).
const SPIN_SWEEPS: u32 = 64;

impl Default for Poller {
    fn default() -> Poller {
        Poller::new()
    }
}

impl Poller {
    /// A poller with a fresh wake flag.
    pub fn new() -> Poller {
        Poller {
            wake: Arc::new(AtomicBool::new(false)),
            idle_streak: 0,
        }
    }

    /// A poller sharing `other`'s wake flag — the worker-pool shape:
    /// one flag, N pollers, any waker reaches them all.
    pub fn sharing(other: &Poller) -> Poller {
        Poller {
            wake: Arc::clone(&other.wake),
            idle_streak: 0,
        }
    }

    /// A handle that can wake this poller (and all pollers sharing its
    /// flag) from any thread.
    pub fn waker(&self) -> Waker {
        Waker {
            flag: Arc::clone(&self.wake),
        }
    }

    /// True once any [`Waker::wake`] has fired. Sticky by design:
    /// shutdown is one-way.
    pub fn wake_requested(&self) -> bool {
        self.wake.load(Ordering::Acquire)
    }

    /// Records that the last sweep did useful work; resets the backoff
    /// so the next sweeps spin at full speed.
    pub fn note_progress(&mut self) {
        self.idle_streak = 0;
    }

    /// Paces an idle sweep: spin for the first few, then sleep with
    /// exponential backoff capped at [`MAX_IDLE_WAIT`]. Returns
    /// immediately when a wake is pending.
    pub fn idle_wait(&mut self) {
        if self.wake_requested() {
            return;
        }
        self.idle_streak = self.idle_streak.saturating_add(1);
        if self.idle_streak <= SPIN_SWEEPS {
            std::hint::spin_loop();
            return;
        }
        let exp = (self.idle_streak - SPIN_SWEEPS).min(6);
        let wait = BASE_IDLE_WAIT
            .saturating_mul(1 << exp.saturating_sub(1))
            .min(MAX_IDLE_WAIT);
        std::thread::sleep(wait);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_reuses_lowest_free_slot() {
        let mut r: Registry<&str> = Registry::new();
        let a = r.register("a", Interest::READ);
        let b = r.register("b", Interest::READ);
        let c = r.register("c", Interest::READ);
        assert_eq!((a, b, c), (Token(0), Token(1), Token(2)));
        assert_eq!(r.deregister(b), Some("b"));
        assert_eq!(r.len(), 2);
        // The freed middle slot is recycled before the tail grows.
        assert_eq!(r.register("d", Interest::READ), Token(1));
        assert_eq!(r.tokens(), vec![Token(0), Token(1), Token(2)]);
        assert_eq!(r.get_mut(Token(1)).map(|(c, _)| *c), Some("d"));
        // Double-deregister is a no-op, not a count corruption.
        assert_eq!(r.deregister(Token(9)), None);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn interest_gates_the_sweep() {
        let mut r: Registry<u8> = Registry::new();
        let t = r.register(7, Interest::READ);
        {
            let (_, interest) = r.get_mut(t).unwrap();
            assert!(interest.readable && !interest.is_idle());
            interest.readable = false;
            assert!(interest.is_idle());
            interest.writable = true;
        }
        let (_, interest) = r.get_mut(t).unwrap();
        assert!(interest.writable);
    }

    #[test]
    fn parked_connections_leave_the_sweep_until_due() {
        let mut r: Registry<&str> = Registry::new();
        let a = r.register("a", Interest::READ);
        let b = r.register("b", Interest::READ);
        assert!(r.park(a, 10));
        assert!(!r.park(a, 12), "double-park is refused");
        assert_eq!(r.tokens(), vec![b]);
        assert_eq!(r.all_tokens(), vec![a, b]);
        assert_eq!((r.len(), r.parked_len()), (2, 1));
        // Not due yet: still parked.
        r.unpark_due(9);
        assert_eq!(r.tokens(), vec![b]);
        // Due: back in the sweep.
        r.unpark_due(10);
        assert_eq!(r.tokens(), vec![a, b]);
        assert_eq!(r.parked_len(), 0);
    }

    #[test]
    fn stale_rearm_entries_are_harmless_after_slot_recycling() {
        let mut r: Registry<&str> = Registry::new();
        let a = r.register("a", Interest::READ);
        assert!(r.park(a, 5));
        // The parked connection closes; its slot is recycled by a fresh
        // connection, which must start un-parked.
        assert_eq!(r.deregister(a), Some("a"));
        assert_eq!(r.parked_len(), 0);
        let fresh = r.register("fresh", Interest::READ);
        assert_eq!(fresh, a, "lowest slot is recycled");
        assert_eq!(r.tokens(), vec![fresh]);
        // The stale re-arm entry fires without corrupting counts.
        r.unpark_due(5);
        assert_eq!((r.len(), r.parked_len()), (1, 0));
        assert_eq!(r.tokens(), vec![fresh]);
    }

    #[test]
    fn unpark_all_rearms_everything_at_once() {
        let mut r: Registry<u8> = Registry::new();
        let toks: Vec<Token> = (0..4).map(|i| r.register(i, Interest::READ)).collect();
        for &t in &toks[..3] {
            assert!(r.park(t, u64::MAX));
        }
        assert_eq!(r.tokens().len(), 1);
        r.unpark_all();
        assert_eq!(r.tokens(), toks);
        assert_eq!(r.parked_len(), 0);
    }

    #[test]
    fn waker_reaches_every_sharing_poller() {
        let mut a = Poller::new();
        let mut b = Poller::sharing(&a);
        assert!(!a.wake_requested() && !b.wake_requested());
        let waker = b.waker();
        let handle = std::thread::spawn(move || waker.wake());
        handle.join().ok();
        assert!(a.wake_requested() && b.wake_requested());
        // A pending wake short-circuits idle_wait.
        a.idle_wait();
        b.idle_wait();
    }

    #[test]
    fn idle_backoff_resets_on_progress() {
        let mut p = Poller::new();
        for _ in 0..SPIN_SWEEPS + 3 {
            p.idle_wait();
        }
        assert!(p.idle_streak > SPIN_SWEEPS);
        p.note_progress();
        assert_eq!(p.idle_streak, 0);
    }
}
