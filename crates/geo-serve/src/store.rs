//! An indexed, read-only view over a loaded `.igds` snapshot.
//!
//! The store keeps the entries exactly as the format guarantees them —
//! sorted by prefix, unique — so every lookup is a binary search over the
//! prefix column ("Lost in the Prefix": the unit of geolocation truth is
//! the routed prefix, not the individual address). Batch lookups fan out
//! over [`geo_model::runtime::par_map_indexed`], inheriting the
//! workspace-wide `IPGEO_THREADS` knob and its determinism contract.

use crate::cache::{CacheCounters, HotCache};
use crate::format::{self, FormatError, Header};
use geo_model::ip::{Ipv4, Prefix24};
use ipgeo::publish::DatasetEntry;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A loaded snapshot with its header, ready to answer queries.
#[derive(Debug, Clone)]
pub struct DatasetStore {
    header: Header,
    entries: Vec<DatasetEntry>,
}

impl DatasetStore {
    /// Parses a snapshot from raw `.igds` bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<DatasetStore, FormatError> {
        let (header, entries) = format::decode(bytes)?;
        Ok(DatasetStore { header, entries })
    }

    /// Loads and validates a snapshot file.
    pub fn open(path: impl AsRef<Path>) -> Result<DatasetStore, FormatError> {
        let (header, entries) = format::load(path)?;
        Ok(DatasetStore { header, entries })
    }

    /// Builds a store directly from entries (tests, benches, diffing a
    /// freshly built dataset without touching disk). Round-trips through
    /// the encoder so the store is always format-canonical.
    pub fn from_entries(entries: &[DatasetEntry], world_seed: u64, nonce: u64) -> DatasetStore {
        DatasetStore::from_bytes(&format::encode(entries, world_seed, nonce))
            // geo-lint: allow(R1, reason = "encode/decode round-trip is a format-module invariant; failing here is a bug, not a request error")
            .expect("freshly encoded snapshot decodes")
    }

    /// The snapshot header (seed, nonce, counts, checksum).
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Number of prefixes in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, sorted by prefix.
    pub fn entries(&self) -> &[DatasetEntry] {
        &self.entries
    }

    /// Exact-prefix lookup by binary search.
    pub fn get(&self, prefix: Prefix24) -> Option<&DatasetEntry> {
        self.entries
            .binary_search_by_key(&prefix, |e| e.prefix)
            .ok()
            .and_then(|i| self.entries.get(i))
    }

    /// Exact lookup of the `/24` covering `ip`.
    pub fn lookup(&self, ip: Ipv4) -> Option<&DatasetEntry> {
        self.get(ip.prefix24())
    }

    /// Nearest-covering-prefix lookup: the entry whose prefix is closest
    /// to `ip`'s `/24` in address space, with the distance in /24 steps
    /// (0 for an exact hit). Ties prefer the lower prefix. `None` only on
    /// an empty store.
    pub fn lookup_nearest(&self, ip: Ipv4) -> Option<(&DatasetEntry, u32)> {
        let target = ip.prefix24();
        let idx = match self.entries.binary_search_by_key(&target, |e| e.prefix) {
            Ok(i) => return self.entries.get(i).map(|e| (e, 0)),
            Err(i) => i,
        };
        let dist = |e: &DatasetEntry| e.prefix.0.abs_diff(target.0);
        let below = idx.checked_sub(1).and_then(|i| self.entries.get(i));
        let above = self.entries.get(idx);
        let best = match (below, above) {
            (Some(b), Some(a)) => {
                if dist(b) <= dist(a) {
                    b
                } else {
                    a
                }
            }
            (Some(b), None) => b,
            (None, Some(a)) => a,
            // Empty store: both neighbors are absent.
            (None, None) => return None,
        };
        Some((best, dist(best)))
    }

    /// Batch exact lookup. Output order matches `ips`.
    ///
    /// Small batches run serially: a single lookup is a ~5-comparison
    /// binary search, so the fan-out only pays for itself once the batch
    /// amortizes thread spawn/join across tens of thousands of lookups
    /// (the pre-fix snapshot recorded `speedup: 0.54` — the parallel
    /// path *losing* — on a 7 680-address sweep). Large batches fan out
    /// over [`geo_model::runtime::par_map_indexed`] unless the effective
    /// worker count is 1 (either `IPGEO_THREADS=1` or a single-core
    /// host, where extra workers are pure oversubscription). Both paths
    /// are bit-identical by the runtime's determinism contract.
    pub fn lookup_batch(&self, ips: &[Ipv4]) -> Vec<Option<DatasetEntry>> {
        let workers = geo_model::runtime::threads()
            .min(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get));
        if workers <= 1 || ips.len() < PAR_BATCH_MIN {
            return ips.iter().map(|&ip| self.lookup(ip).cloned()).collect();
        }
        geo_model::runtime::par_map_indexed(ips.len(), |i| self.lookup(ips[i]).cloned())
    }
}

/// Below this batch size `lookup_batch` stays serial: per-lookup work is
/// O(log n) over an in-memory column, so thread spawn/join dominates
/// until the batch reaches tens of thousands of addresses.
pub const PAR_BATCH_MIN: usize = 16 * 1024;

/// One immutable serving generation: a snapshot plus the hot cache that
/// memoizes its answers. Workers hold an `Arc<Generation>` and answer
/// every query of a sweep against it, so a connection's response stream
/// stays a pure function of `(generation snapshot, request stream)` even
/// while a reload installs the next generation concurrently.
#[derive(Debug)]
pub struct Generation {
    /// 1-based generation number; increments on every install.
    pub number: u64,
    /// The snapshot this generation serves.
    pub store: Arc<DatasetStore>,
    /// The generation's own answer cache (born empty on install — the
    /// cache purity argument needs one immutable snapshot per cache).
    pub cache: Arc<HotCache>,
}

/// The atomically swappable handle workers serve through.
///
/// Reads are one atomic load on the fast path: a worker keeps its local
/// `Arc<Generation>` and compares [`StoreHandle::generation`] once per
/// sweep, taking the mutex only on an actual swap. [`StoreHandle::install`]
/// serializes writers behind the same mutex, absorbs the retiring
/// generation's cache counters into a running total, and only then
/// publishes the new generation number — so a reader that sees the new
/// number always finds the new generation behind the lock.
#[derive(Debug)]
pub struct StoreHandle {
    generation: AtomicU64,
    current: Mutex<Arc<Generation>>,
    // Retired generations' cache traffic, accumulated as plain atomics
    // so the handle only ever holds its single mutex.
    retired_hits: AtomicU64,
    retired_misses: AtomicU64,
    retired_evictions: AtomicU64,
}

impl StoreHandle {
    /// Wraps a snapshot as generation 1.
    pub fn new(store: Arc<DatasetStore>) -> StoreHandle {
        StoreHandle {
            generation: AtomicU64::new(1),
            current: Mutex::new(Arc::new(Generation {
                number: 1,
                store,
                cache: Arc::new(HotCache::new()),
            })),
            retired_hits: AtomicU64::new(0),
            retired_misses: AtomicU64::new(0),
            retired_evictions: AtomicU64::new(0),
        }
    }

    /// The live generation number (one atomic load).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// A reference to the live generation. Workers call this only when
    /// [`StoreHandle::generation`] disagrees with their local copy.
    pub fn current(&self) -> Arc<Generation> {
        Arc::clone(&self.current.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Atomically installs `store` as the next generation with a fresh
    /// cache; returns the new generation number. In-flight connections
    /// keep answering from whichever generation their worker holds until
    /// its next sweep notices the swap — nothing is dropped.
    pub fn install(&self, store: Arc<DatasetStore>) -> u64 {
        let mut cur = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        let next = cur.number + 1;
        let retiring = cur.cache.counters();
        *cur = Arc::new(Generation {
            number: next,
            store,
            cache: Arc::new(HotCache::new()),
        });
        self.generation.store(next, Ordering::Release);
        drop(cur);
        self.retired_hits
            .fetch_add(retiring.hits, Ordering::Relaxed);
        self.retired_misses
            .fetch_add(retiring.misses, Ordering::Relaxed);
        self.retired_evictions
            .fetch_add(retiring.evictions, Ordering::Relaxed);
        next
    }

    /// Server-lifetime cache counters: every retired generation's totals
    /// plus the live generation's so far.
    pub fn cache_counters(&self) -> CacheCounters {
        let mut total = CacheCounters {
            hits: self.retired_hits.load(Ordering::Relaxed),
            misses: self.retired_misses.load(Ordering::Relaxed),
            evictions: self.retired_evictions.load(Ordering::Relaxed),
        };
        total.absorb(self.current().cache.counters());
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::point::GeoPoint;
    use ipgeo::publish::Evidence;

    fn entry(prefix: u32) -> DatasetEntry {
        DatasetEntry {
            prefix: Prefix24(prefix),
            location: GeoPoint::new(prefix as f64 / 100.0, 0.0),
            evidence: Evidence::Whois,
        }
    }

    fn store() -> DatasetStore {
        let entries: Vec<DatasetEntry> = [10u32, 20, 30, 300].map(entry).to_vec();
        DatasetStore::from_entries(&entries, 1, 1)
    }

    #[test]
    fn exact_lookup_hits_and_misses() {
        let s = store();
        assert_eq!(s.len(), 4);
        assert_eq!(s.get(Prefix24(20)).unwrap().prefix, Prefix24(20));
        assert!(s.get(Prefix24(21)).is_none());
        let ip = Prefix24(30).host(7);
        assert_eq!(s.lookup(ip).unwrap().prefix, Prefix24(30));
    }

    #[test]
    fn nearest_picks_the_closer_neighbor() {
        let s = store();
        // 24 is 4 away from 20 and 6 away from 30.
        let (e, d) = s.lookup_nearest(Prefix24(24).host(1)).unwrap();
        assert_eq!((e.prefix, d), (Prefix24(20), 4));
        // Exact hit has distance 0.
        let (e, d) = s.lookup_nearest(Prefix24(300).host(9)).unwrap();
        assert_eq!((e.prefix, d), (Prefix24(300), 0));
        // Below the smallest and above the largest prefix clamp to the ends.
        assert_eq!(
            s.lookup_nearest(Prefix24(1).host(0)).unwrap().0.prefix,
            Prefix24(10)
        );
        assert_eq!(
            s.lookup_nearest(Prefix24(9999).host(0)).unwrap().0.prefix,
            Prefix24(300)
        );
        // Equidistant (25 between 20 and 30) prefers the lower prefix.
        let (e, d) = s.lookup_nearest(Prefix24(25).host(0)).unwrap();
        assert_eq!((e.prefix, d), (Prefix24(20), 5));
    }

    #[test]
    fn empty_store_answers_nothing() {
        let s = DatasetStore::from_entries(&[], 1, 1);
        assert!(s.is_empty());
        assert!(s.lookup(Ipv4(77)).is_none());
        assert!(s.lookup_nearest(Ipv4(77)).is_none());
    }

    #[test]
    fn batch_matches_singles() {
        let s = store();
        let ips: Vec<Ipv4> = (0u32..600).map(|p| Prefix24(p).host(1)).collect();
        let batch = s.lookup_batch(&ips);
        for (ip, got) in ips.iter().zip(&batch) {
            assert_eq!(got.as_ref(), s.lookup(*ip));
        }
    }

    #[test]
    fn store_handle_swaps_generations_atomically() {
        use crate::cache::{CacheKind, CacheValue};

        let handle = StoreHandle::new(Arc::new(store()));
        assert_eq!(handle.generation(), 1);
        let g1 = handle.current();
        assert_eq!(g1.number, 1);
        assert_eq!(g1.store.len(), 4);

        // Traffic on generation 1's cache...
        g1.cache
            .put(CacheKind::LineLocate, 10, CacheValue::Line("OK x".into()));
        assert!(g1.cache.get(CacheKind::LineLocate, 10).is_some());
        assert!(g1.cache.get(CacheKind::LineLocate, 99).is_none());

        // ...survives the install in the lifetime totals, while the new
        // generation starts with an empty cache.
        let next = handle.install(Arc::new(DatasetStore::from_entries(&[entry(10)], 1, 2)));
        assert_eq!(next, 2);
        assert_eq!(handle.generation(), 2);
        let g2 = handle.current();
        assert_eq!((g2.number, g2.store.len()), (2, 1));
        assert!(g2.cache.get(CacheKind::LineLocate, 10).is_none());
        let totals = handle.cache_counters();
        assert_eq!((totals.hits, totals.evictions), (1, 0));
        // g1's one miss (the 99 probe) + the g2 probe just above.
        assert_eq!(totals.misses, 2);

        // A worker still holding g1 keeps serving the old snapshot.
        assert_eq!(g1.store.len(), 4);
    }

    /// Parity across the serial-fallback seam: a batch below
    /// `PAR_BATCH_MIN` (always serial) and one above it (parallel when
    /// the environment grants workers — the CI chaos job runs this suite
    /// at `IPGEO_THREADS` 1 and 8) must both equal the one-at-a-time
    /// answers element for element.
    #[test]
    fn batch_parity_across_the_parallel_threshold() {
        let s = store();
        for n in [PAR_BATCH_MIN / 2, PAR_BATCH_MIN + 257] {
            let ips: Vec<Ipv4> = (0..n as u32)
                .map(|i| Prefix24(i % 512).host((i % 250) as u8))
                .collect();
            let serial: Vec<Option<DatasetEntry>> =
                ips.iter().map(|&ip| s.lookup(ip).cloned()).collect();
            assert_eq!(s.lookup_batch(&ips), serial, "batch size {n}");
        }
    }
}
