//! A readiness-driven TCP query server over a [`DatasetStore`].
//!
//! Architecture (DESIGN.md §11, hardened in §14): a fixed pool of
//! event-loop workers — sized from `IPGEO_THREADS` via
//! [`geo_model::runtime::threads`] — each sweeping its own set of
//! nonblocking connections registered in a [`poll::Registry`]. No thread
//! is ever spawned per connection and no serving-path read blocks; the
//! workspace denies `unsafe_code`, so the sweep is a safe-`std`
//! readiness scan paced by [`poll::Poller`]'s adaptive idle backoff
//! instead of an OS poller.
//!
//! Every connection speaks one of two protocols, chosen by its first
//! byte ([`proto::REQ_MAGIC`] opens a binary conversation, anything else
//! is the line protocol):
//!
//! ```text
//! LOCATE <ip>    -> OK <prefix,lat,lon,method,confidence,evidence>   exact /24 hit
//!                   MISS <ip>                             no covering entry
//! NEAREST <ip>   -> OK <row> distance=<n>                 nearest prefix, /24 steps
//! STATS          -> OK entries=.. hits=.. misses=.. connections=..
//!                      uptime_s=.. qps=.. generation=.. live=..
//!                      shed=.. evicted=.. proto_errors=..
//!                      reload_failed=..
//! RELOAD         -> OK reload=scheduled generation=<n>    schedules a snapshot re-read
//! QUIT           -> BYE                                   closes the connection
//! anything else  -> ERR <reason>
//! ```
//!
//! plus the batched/pipelined binary protocol of [`proto`]. Both paths
//! read answers through the live generation's `HotCache`; cached answers
//! are byte-identical to store answers by construction, so the cache is
//! invisible in the response stream.
//!
//! **Robustness layer** (the serve path must survive the open internet,
//! not just a loopback loadgen):
//!
//! - every connection runs the [`lifecycle`] deadline state machine —
//!   idle / stalled-read (anti-slow-loris) / slow-client (anti
//!   slow-reader) evictions, driven by one [`ServeClock`] read per
//!   sweep and *no timer threads*;
//! - request buffers are bounded by the budget shared with the binary
//!   frame check ([`LINE_BUDGET`] = [`proto::MAX_BODY`]); a newline-free
//!   line past the budget is a typed `too-large` eviction, not memory
//!   growth;
//! - global + per-worker connection caps gate `accept`: a connection
//!   over either cap is answered `BUSY` in its own protocol
//!   ([`proto::STATUS_BUSY`] frame / `ERR busy` line) and closed —
//!   overload sheds predictably instead of collapsing;
//! - live snapshot reload: workers serve through a generation-tagged
//!   [`StoreHandle`] and refresh with one atomic load per sweep, so
//!   `RELOAD` (or [`QueryServer::reload`]) swaps snapshots without
//!   dropping a single in-flight connection. The `RELOAD` command is
//!   deliberately constrained: it only re-reads the operator-configured
//!   path, the snapshot load runs on a short-lived background thread
//!   (never stalling the event loop), at most one load runs at a time,
//!   and accepts are rate-limited by
//!   [`ServeLimits::reload_min_interval_ms`] — the listener binds
//!   loopback only, and even a local client cannot thrash the disk or
//!   churn the warm caches;
//! - graceful drain ([`QueryServer::shutdown_drain`]): stop accepting,
//!   finish in-flight work up to [`ServeLimits::drain_grace_ms`], then
//!   evict stragglers with a typed farewell;
//! - connections idle for [`PARK_AFTER`] consecutive sweeps *and*
//!   [`PARK_IDLE_MS`] of clock time are parked off the sweep
//!   ([`poll::Registry::park`]) and lazily re-armed, so thousands of
//!   idle connections cost ~no CPU while pipelined clients stay hot.
//!
//! **Determinism lives in responses, not scheduling**: frames and lines
//! on one connection are processed in arrival order and answered in
//! order, so each connection's response byte stream is a pure function
//! of `(generation snapshot, its own request stream)` — regardless of
//! worker count, connection interleaving, or pipelining depth. Which
//! *worker* serves a connection races; what the connection *reads back*
//! never does. The `chaos` module's equivalence suite leans on exactly
//! this: clean clients read bit-identical bytes while chaos clients
//! attack, and every eviction/shed counter is a pure function of the
//! chaos seed.
//!
//! Hit/miss/connection/eviction counters are relaxed atomics (monotonic,
//! no cross-counter invariant). Shutdown is the poller's wake token: one
//! shared flag flipped by [`poll::Waker::wake`], observed by every
//! worker at the top of its next sweep — no dummy wake-up connection.

use crate::cache::{CacheKind, CacheValue};
use crate::format::method_tag;
use crate::lifecycle::{ConnPhase, Eviction, Lifecycle, ServeClock, ServeLimits, Tick};
use crate::poll::{Interest, Poller, Registry, Waker};
use crate::proto::{
    self, encode_error, try_decode_request, LocateRecord, Opcode, Request, ResponseWriter,
    StatsRecord,
};
use crate::store::{DatasetStore, Generation, StoreHandle};
use ipgeo::publish::DatasetEntry;
use std::io::{self, BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Per-sweep read chunk. One syscall per ready connection per sweep in
/// the common case; a connection with more than this buffered keeps the
/// sweep's attention until it drains.
const READ_CHUNK: usize = 64 * 1024;

/// Longest accepted text-protocol line — deliberately the *same* budget
/// as the binary frame body bound, so both protocols reject oversized
/// input at exactly one constant. A newline-free client past this is
/// answered `ERR too-large` and evicted.
const LINE_BUDGET: usize = proto::MAX_BODY;

/// Input buffered for one connection before we stop reading it until
/// the parser catches up (largest binary frame plus headroom).
const MAX_INBUF: usize = proto::MAX_BODY + 64 * 1024;

/// Output backlog at which a connection stops having its input parsed:
/// a client that pipelines faster than it reads must absorb its own
/// backpressure rather than ballooning server memory.
const WRITE_HIGH_WATER: usize = 4 * 1024 * 1024;

/// New connections accepted per worker per sweep; bounds accept
/// starvation of existing connections under a connect flood.
const ACCEPT_BURST: usize = 64;

/// Consecutive do-nothing sweeps before a connection is parked off the
/// sweep (it stops costing a read syscall per sweep). Sweep counts alone
/// are no idleness signal — 64 sweeps complete in microseconds on a hot
/// poller — so parking additionally requires [`PARK_IDLE_MS`] of clock
/// time without socket bytes.
const PARK_AFTER: u32 = 64;

/// Minimum clock-time silence (no bytes either direction) before a
/// connection may be parked. Keeps pipelined closed-loop clients — idle
/// for microseconds between bursts — on the hot sweep, while a truly
/// quiet connection parks after ~50ms and costs ~no CPU.
const PARK_IDLE_MS: u64 = 50;

/// Sweeps a parked connection waits before its lazy re-arm. Bounds the
/// extra latency a parked connection's next request can see to a few
/// dozen microsecond-scale sweeps.
const PARK_RECHECK: u64 = 64;

/// Live counters of a running server.
#[derive(Debug)]
pub struct ServeStats {
    hits: AtomicU64,
    misses: AtomicU64,
    connections: AtomicU64,
    live: AtomicU64,
    shed: AtomicU64,
    evicted_idle: AtomicU64,
    evicted_stalled: AtomicU64,
    evicted_slow: AtomicU64,
    evicted_too_large: AtomicU64,
    evicted_drain: AtomicU64,
    proto_errors: AtomicU64,
    reload_failed: AtomicU64,
    started: Instant,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Queries answered from the store.
    pub hits: u64,
    /// Queries with no covering entry.
    pub misses: u64,
    /// Connections accepted so far (shed connections included).
    pub connections: u64,
    /// Connections currently registered (parked and shed included).
    pub live: u64,
    /// Connections answered `BUSY` because a cap was exceeded.
    pub shed: u64,
    /// Idle-deadline evictions.
    pub evicted_idle: u64,
    /// Stalled-read (slow-loris) evictions.
    pub evicted_stalled: u64,
    /// Slow-client (write-deadline) evictions.
    pub evicted_slow: u64,
    /// Oversized-input evictions.
    pub evicted_too_large: u64,
    /// Drain-deadline evictions at shutdown.
    pub evicted_drain: u64,
    /// Malformed binary frames answered with a typed error.
    pub proto_errors: u64,
    /// Background `RELOAD` snapshot loads that failed (the serving
    /// generation did not advance).
    pub reload_failed: u64,
    /// Seconds since the server started.
    pub uptime_s: f64,
}

impl StatsSnapshot {
    /// Total queries answered.
    pub fn queries(&self) -> u64 {
        self.hits + self.misses
    }

    /// Mean queries per second over the server's uptime.
    pub fn qps(&self) -> f64 {
        if self.uptime_s > 0.0 {
            self.queries() as f64 / self.uptime_s
        } else {
            0.0
        }
    }

    /// All forced closes, regardless of reason.
    pub fn evicted_total(&self) -> u64 {
        self.evicted_idle
            + self.evicted_stalled
            + self.evicted_slow
            + self.evicted_too_large
            + self.evicted_drain
    }
}

impl ServeStats {
    // Server uptime is a wall-clock serving statistic, not simulation
    // state; exempt from the workspace timing ban (see clippy.toml).
    #[allow(clippy::disallowed_methods)]
    fn new() -> ServeStats {
        ServeStats {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            live: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            evicted_idle: AtomicU64::new(0),
            evicted_stalled: AtomicU64::new(0),
            evicted_slow: AtomicU64::new(0),
            evicted_too_large: AtomicU64::new(0),
            evicted_drain: AtomicU64::new(0),
            proto_errors: AtomicU64::new(0),
            reload_failed: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            live: self.live.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            evicted_idle: self.evicted_idle.load(Ordering::Relaxed),
            evicted_stalled: self.evicted_stalled.load(Ordering::Relaxed),
            evicted_slow: self.evicted_slow.load(Ordering::Relaxed),
            evicted_too_large: self.evicted_too_large.load(Ordering::Relaxed),
            evicted_drain: self.evicted_drain.load(Ordering::Relaxed),
            proto_errors: self.proto_errors.load(Ordering::Relaxed),
            reload_failed: self.reload_failed.load(Ordering::Relaxed),
            uptime_s: self.started.elapsed().as_secs_f64(),
        }
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn count_eviction(&self, ev: Eviction) {
        let counter = match ev {
            Eviction::Idle => &self.evicted_idle,
            Eviction::StalledRead => &self.evicted_stalled,
            Eviction::SlowClient => &self.evicted_slow,
            Eviction::TooLarge => &self.evicted_too_large,
            Eviction::Drain => &self.evicted_drain,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Drain-shutdown state shared by every worker.
#[derive(Debug, Default)]
struct DrainState {
    active: AtomicBool,
    /// Clock tick the drain began (read only when `active`).
    since: AtomicU64,
}

/// Single-flight and rate-limit state for the `RELOAD` admin command.
/// The command is deliberately narrow: it only re-reads the configured
/// snapshot path (a client can never name a file), at most one load
/// runs at a time, and accepts are spaced at least
/// [`ServeLimits::reload_min_interval_ms`] apart — so a hostile client
/// on the loopback listener cannot thrash the disk or churn the warm
/// per-generation cache faster than the operator allowed.
#[derive(Debug, Default)]
struct ReloadState {
    /// A background snapshot load is in flight.
    busy: Arc<AtomicBool>,
    /// `tick + 1` of the last accepted `RELOAD` (0 = never accepted).
    last_accept: AtomicU64,
}

/// Everything one worker needs to answer queries; shared by `Arc`.
struct Serving {
    handle: Arc<StoreHandle>,
    stats: Arc<ServeStats>,
    limits: ServeLimits,
    clock: ServeClock,
    drain: DrainState,
    /// Where `RELOAD` re-reads the snapshot from; `None` refuses the
    /// command (in-memory stores reload via [`QueryServer::reload`]).
    snapshot_path: Option<PathBuf>,
    reload: ReloadState,
}

impl Serving {
    /// Computes the one-line response to a protocol line against the
    /// worker's generation. Pure with respect to the connection (only
    /// counters mutate), so it is unit-testable without a socket. The
    /// second return is `true` when the connection should close.
    fn respond(&self, g: &Generation, line: &str) -> (String, bool) {
        let mut words = line.split_whitespace();
        match words.next() {
            Some("LOCATE") => match words.next().map(str::parse) {
                Some(Ok(ip)) => match g.store.lookup(ip) {
                    Some(entry) => {
                        self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        (format!("OK {entry}"), false)
                    }
                    None => {
                        self.stats.misses.fetch_add(1, Ordering::Relaxed);
                        (format!("MISS {ip}"), false)
                    }
                },
                Some(Err(e)) => (format!("ERR {e}"), false),
                None => ("ERR LOCATE needs an <ip>".into(), false),
            },
            Some("NEAREST") => match words.next().map(str::parse) {
                Some(Ok(ip)) => match g.store.lookup_nearest(ip) {
                    Some((entry, dist)) => {
                        self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        (format!("OK {entry} distance={dist}"), false)
                    }
                    None => {
                        self.stats.misses.fetch_add(1, Ordering::Relaxed);
                        (format!("MISS {ip}"), false)
                    }
                },
                Some(Err(e)) => (format!("ERR {e}"), false),
                None => ("ERR NEAREST needs an <ip>".into(), false),
            },
            Some("STATS") => {
                let s = self.stats.snapshot();
                (
                    format!(
                        "OK entries={} hits={} misses={} connections={} uptime_s={:.3} \
                         qps={:.1} generation={} live={} shed={} evicted={} proto_errors={} \
                         reload_failed={}",
                        g.store.len(),
                        s.hits,
                        s.misses,
                        s.connections,
                        s.uptime_s,
                        s.qps(),
                        // The freshest generation, not the worker's copy:
                        // a STATS right after RELOAD must report the swap
                        // even when another worker installed it.
                        self.handle.generation(),
                        s.live,
                        s.shed,
                        s.evicted_total(),
                        s.proto_errors,
                        s.reload_failed,
                    ),
                    false,
                )
            }
            Some("RELOAD") => (self.schedule_reload(), false),
            Some("QUIT") => ("BYE".into(), true),
            Some(other) => (
                format!("ERR unknown command `{other}` (LOCATE|NEAREST|STATS|RELOAD|QUIT)"),
                false,
            ),
            None => ("ERR empty command".into(), false),
        }
    }

    /// Handles the `RELOAD` admin command: validates the gate (path
    /// configured, rate limit, single-flight), then hands the snapshot
    /// read to a short-lived background thread so the event-loop worker
    /// never stalls on disk — every other connection on this worker
    /// keeps being swept while the load runs. The reply is immediate;
    /// the swap surfaces in `STATS generation=` once the load lands
    /// (failures land in the `reload_failed` counter instead).
    fn schedule_reload(&self) -> String {
        let Some(path) = &self.snapshot_path else {
            return "ERR reload: no snapshot path configured".into();
        };
        let now = self.clock.now();
        let last = self.reload.last_accept.load(Ordering::Acquire);
        let min = self.limits.reload_min_interval_ms;
        if last != 0 && now.saturating_sub(last - 1) < min {
            return format!("ERR reload: rate-limited (at most one reload per {min}ms)");
        }
        if self
            .reload
            .busy
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return "ERR reload: a reload is already in progress".into();
        }
        self.reload.last_accept.store(now + 1, Ordering::Release);
        // Read before the spawn: the loader may install the next
        // generation before the reply line is even formatted.
        let scheduled_from = self.handle.generation();
        let handle = Arc::clone(&self.handle);
        let stats = Arc::clone(&self.stats);
        let busy = Arc::clone(&self.reload.busy);
        let path = path.clone();
        // Not a per-connection thread (R4's concern): one single-flight
        // loader for an operator command, named for debuggability.
        let spawned = std::thread::Builder::new()
            .name("igds-reload".into())
            .spawn(move || {
                match DatasetStore::open(&path) {
                    Ok(fresh) => {
                        handle.install(Arc::new(fresh));
                    }
                    Err(_) => {
                        stats.reload_failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                busy.store(false, Ordering::Release);
            });
        match spawned {
            Ok(_) => format!("OK reload=scheduled generation={scheduled_from}"),
            Err(e) => {
                self.reload.busy.store(false, Ordering::Release);
                format!("ERR reload: {e}")
            }
        }
    }

    /// Answers a text-protocol line straight into the output buffer,
    /// serving `OK` answers for well-formed single-address LOCATE /
    /// NEAREST from the generation's cache (byte-identical to the store
    /// path). Returns `true` when the connection should close.
    fn respond_line_into(&self, g: &Generation, line: &str, out: &mut Vec<u8>) -> bool {
        let mut words = line.split_whitespace();
        let cached = match (words.next(), words.next(), words.next()) {
            (Some(verb @ ("LOCATE" | "NEAREST")), Some(ip_str), None) => {
                ip_str.parse::<geo_model::ip::Ipv4>().ok().map(|ip| {
                    let kind = if verb == "LOCATE" {
                        CacheKind::LineLocate
                    } else {
                        CacheKind::LineNearest
                    };
                    (kind, ip.prefix24().0)
                })
            }
            _ => None,
        };
        if let Some((kind, prefix)) = cached {
            if let Some(CacheValue::Line(reply)) = g.cache.get(kind, prefix) {
                // Only `OK` lines are admitted, so a cache hit is a store hit.
                self.stats.count(true);
                out.extend_from_slice(reply.as_bytes());
                out.push(b'\n');
                return false;
            }
        }
        let (reply, close) = self.respond(g, line);
        if let Some((kind, prefix)) = cached {
            if reply.starts_with("OK ") {
                g.cache
                    .put(kind, prefix, CacheValue::Line(reply.as_str().into()));
            }
        }
        out.extend_from_slice(reply.as_bytes());
        out.push(b'\n');
        close
    }

    fn record_from(entry: &DatasetEntry, distance: u32) -> LocateRecord {
        LocateRecord {
            hit: true,
            prefix: entry.prefix,
            lat_bits: entry.location.lat().to_bits(),
            lon_bits: entry.location.lon().to_bits(),
            method: method_tag(&entry.evidence),
            distance,
            confidence_bits: entry.evidence.confidence().to_bits(),
        }
    }

    /// One binary-protocol answer record, through the cache. Both hit
    /// and miss records are pure functions of the queried `/24`, so
    /// both are cacheable.
    fn locate_record(
        &self,
        g: &Generation,
        ip: geo_model::ip::Ipv4,
        nearest: bool,
    ) -> LocateRecord {
        let kind = if nearest {
            CacheKind::BinNearest
        } else {
            CacheKind::BinLocate
        };
        let prefix = ip.prefix24().0;
        if let Some(CacheValue::Record(rec)) = g.cache.get(kind, prefix) {
            self.stats.count(rec.hit);
            return rec;
        }
        let rec = if nearest {
            match g.store.lookup_nearest(ip) {
                Some((entry, dist)) => Self::record_from(entry, dist),
                None => LocateRecord::miss(ip),
            }
        } else {
            match g.store.lookup(ip) {
                Some(entry) => Self::record_from(entry, 0),
                None => LocateRecord::miss(ip),
            }
        };
        self.stats.count(rec.hit);
        g.cache.put(kind, prefix, CacheValue::Record(rec));
        rec
    }

    /// Answers one decoded binary request straight into the output
    /// buffer, records streaming in query order.
    fn respond_frame_into(&self, g: &Generation, req: &Request, out: &mut Vec<u8>) {
        match req {
            Request::Locate(ips) | Request::Nearest(ips) => {
                let nearest = matches!(req, Request::Nearest(_));
                let opcode = if nearest {
                    Opcode::Nearest
                } else {
                    Opcode::Locate
                };
                let w = ResponseWriter::begin(out, opcode);
                for &ip in ips {
                    let rec = self.locate_record(g, ip, nearest);
                    w.push_record(out, &rec);
                }
                w.finish(out);
            }
            Request::Stats => {
                let s = self.stats.snapshot();
                let w = ResponseWriter::begin(out, Opcode::Stats);
                w.push_stats(
                    out,
                    &StatsRecord {
                        entries: g.store.len() as u64,
                        hits: s.hits,
                        misses: s.misses,
                        connections: s.connections,
                        // Freshest generation for the same reason the
                        // text STATS line reads it off the handle.
                        generation: self.handle.generation(),
                        live: s.live,
                        shed: s.shed,
                        evicted: s.evicted_total(),
                        proto_errors: s.proto_errors,
                        reload_failed: s.reload_failed,
                    },
                );
                w.finish(out);
            }
        }
    }
}

/// Which protocol a connection speaks; decided by its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Undecided,
    Line,
    Binary,
}

/// One registered connection's state.
struct Conn {
    stream: TcpStream,
    mode: Mode,
    /// Bytes read but not yet parsed; `parsed` marks the frame/line
    /// boundary already consumed.
    inbuf: Vec<u8>,
    parsed: usize,
    /// Bytes queued for the client; `sent` marks how far the socket got.
    out: Vec<u8>,
    sent: usize,
    /// Flush what is queued, then close (QUIT, EOF, protocol error).
    closing: bool,
    /// Accepted over a connection cap: answer `BUSY` and close, never
    /// serve a query.
    shed: bool,
    /// Deadline state machine (see [`lifecycle`]).
    life: Lifecycle,
    /// Consecutive sweeps with nothing to do; drives parking.
    idle_sweeps: u32,
}

impl Conn {
    fn new(stream: TcpStream, now: Tick, shed: bool) -> Conn {
        Conn {
            stream,
            mode: Mode::Undecided,
            inbuf: Vec::new(),
            parsed: 0,
            out: Vec::new(),
            sent: 0,
            closing: false,
            shed,
            life: Lifecycle::new(now),
            idle_sweeps: 0,
        }
    }

    fn backlog(&self) -> usize {
        self.out.len() - self.sent
    }

    /// Drops already-parsed input; called once parsing stalls so the
    /// buffer never grows beyond one partial frame/line.
    fn compact(&mut self) {
        if self.parsed == self.inbuf.len() {
            self.inbuf.clear();
            self.parsed = 0;
        } else if self.parsed > READ_CHUNK {
            self.inbuf.drain(..self.parsed);
            self.parsed = 0;
        }
    }
}

/// One best-effort typed farewell before an evicted connection closes.
/// Nonblocking single write: a client too broken to receive it loses
/// nothing it was entitled to.
fn farewell(conn: &mut Conn, ev: Eviction) {
    let bytes: Vec<u8> = match conn.mode {
        Mode::Line => format!("ERR evicted: {}\n", ev.name()).into_bytes(),
        Mode::Binary => {
            let mut b = Vec::new();
            encode_error(&mut b, Opcode::Locate, &format!("evicted: {}", ev.name()));
            b
        }
        Mode::Undecided => return,
    };
    let _ = conn.stream.write(&bytes);
}

/// Outcome of one connection sweep step.
enum Sweep {
    Keep,
    Drop,
    /// Idle long enough to leave the sweep until its lazy re-arm.
    Park,
}

/// Reads, parses, answers, and flushes one connection. Nonblocking
/// throughout: every `WouldBlock` just ends that phase until the next
/// sweep.
// geo-lint: allow(R1T, reason = "cursor slices hold `parsed <= inbuf.len()`, `sent <= out.len()`, and `n <= scratch.len()` from read()")
fn sweep_conn(
    serving: &Serving,
    g: &Generation,
    conn: &mut Conn,
    scratch: &mut [u8],
    progress: &mut bool,
    now: Tick,
    draining: bool,
) -> Sweep {
    let mut io_moved = false;
    let mut completed = false;
    let mut saw_eof = false;

    // Read phase — skipped while the client is not draining its answers.
    while !conn.closing && conn.backlog() < WRITE_HIGH_WATER && conn.inbuf.len() < MAX_INBUF {
        match conn.stream.read(scratch) {
            Ok(0) => {
                saw_eof = true;
                break;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&scratch[..n]);
                *progress = true;
                io_moved = true;
                if n < scratch.len() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Sweep::Drop,
        }
    }

    // Mode sniff — the first byte picks the protocol.
    if conn.mode == Mode::Undecided {
        if let Some(&first) = conn.inbuf.first() {
            conn.mode = if first == proto::REQ_MAGIC {
                Mode::Binary
            } else {
                Mode::Line
            };
        }
    }

    // Parse phase — consume every complete frame/line now buffered.
    if conn.shed {
        // A shed connection gets exactly one BUSY reply in its own
        // protocol, then closes; its input is never interpreted.
        if !conn.closing && conn.mode != Mode::Undecided {
            match conn.mode {
                Mode::Line => conn.out.extend_from_slice(b"ERR busy\n"),
                Mode::Binary => proto::encode_busy(&mut conn.out, Opcode::Locate),
                Mode::Undecided => {}
            }
            conn.closing = true;
            *progress = true;
        }
        conn.inbuf.clear();
        conn.parsed = 0;
    } else if !conn.closing {
        // Gated on `closing` exactly like the read phase: once a
        // protocol error, oversized line, or QUIT has set `closing`,
        // the remaining input is never re-interpreted. Without the gate
        // a connection whose backlog cannot flush (slow reader) would
        // re-parse the same bytes every sweep — double-counting
        // proto_errors / evictions and appending a duplicate error
        // reply per sweep until the write deadline fires.
        match conn.mode {
            Mode::Undecided => {}
            Mode::Binary => loop {
                match try_decode_request(&conn.inbuf[conn.parsed..]) {
                    Ok(proto::Decoded::Frame(req, used)) => {
                        serving.respond_frame_into(g, &req, &mut conn.out);
                        conn.parsed += used;
                        completed = true;
                        *progress = true;
                    }
                    Ok(proto::Decoded::NeedMore) => {
                        if conn.inbuf.len() - conn.parsed >= MAX_INBUF {
                            // A frame can never legitimately be this large;
                            // the budget check makes this unreachable, but
                            // keep the guard so a bug cannot balloon memory.
                            serving.stats.count_eviction(Eviction::TooLarge);
                            encode_error(
                                &mut conn.out,
                                Opcode::Locate,
                                "frame exceeds input budget",
                            );
                            conn.closing = true;
                        }
                        break;
                    }
                    Err(e) => {
                        serving.stats.proto_errors.fetch_add(1, Ordering::Relaxed);
                        encode_error(&mut conn.out, Opcode::Locate, &e.to_string());
                        conn.closing = true;
                        *progress = true;
                        break;
                    }
                }
            },
            Mode::Line => loop {
                let pending = &conn.inbuf[conn.parsed..];
                let Some(nl) = pending.iter().position(|&b| b == b'\n') else {
                    if pending.len() > LINE_BUDGET {
                        serving.stats.count_eviction(Eviction::TooLarge);
                        conn.out.extend_from_slice(
                            format!("ERR too-large: line exceeds the {LINE_BUDGET}-byte budget\n")
                                .as_bytes(),
                        );
                        conn.closing = true;
                    }
                    break;
                };
                let line = String::from_utf8_lossy(&pending[..nl]);
                let close = serving.respond_line_into(g, line.trim(), &mut conn.out);
                conn.parsed += nl + 1;
                completed = true;
                *progress = true;
                if close {
                    conn.closing = true;
                    break;
                }
            },
        }
    }
    // EOF turns into `closing` only *after* the parse phase, so requests
    // that arrived with (or before) the client's FIN are still answered
    // and flushed; from the next sweep on the gate above keeps the
    // leftover bytes (a partial frame, input after QUIT) uninterpreted.
    if saw_eof {
        conn.closing = true;
    }
    if conn.closing {
        // The gate above means unparsed input on a closing connection
        // can never be interpreted — don't hold it while the farewell
        // backlog drains.
        conn.inbuf.clear();
        conn.parsed = 0;
    }
    conn.compact();

    // Write phase — flush as much of the backlog as the socket takes.
    let had_backlog = conn.backlog() > 0;
    while conn.sent < conn.out.len() {
        match conn.stream.write(&conn.out[conn.sent..]) {
            Ok(0) => return Sweep::Drop,
            Ok(n) => {
                conn.sent += n;
                *progress = true;
                io_moved = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Sweep::Drop,
        }
    }
    if conn.sent == conn.out.len() {
        conn.out.clear();
        conn.sent = 0;
        if had_backlog {
            completed = true;
        }
        if conn.closing {
            return Sweep::Drop;
        }
    }

    let pending_input = conn.inbuf.len() > conn.parsed;

    // Drain shutdown closes connections the moment they go quiet; only
    // in-flight work (a partial frame or an undrained backlog) keeps one
    // alive, and only until the drain deadline.
    if draining && !conn.closing && conn.backlog() == 0 && !pending_input {
        return Sweep::Drop;
    }

    // Deadline bookkeeping: one clock read per sweep drives every
    // timeout decision (see `lifecycle`).
    if io_moved {
        conn.life.io_progress(now);
    }
    let phase = if conn.backlog() > 0 {
        ConnPhase::Writing
    } else if pending_input {
        ConnPhase::Reading
    } else {
        ConnPhase::Idle
    };
    conn.life.observe(now, phase, completed);
    let limits = if conn.shed {
        // A shed connection exists only to receive its BUSY reply; it
        // gets the short read deadline, not the full idle allowance.
        ServeLimits {
            idle_timeout_ms: serving.limits.read_timeout_ms,
            ..serving.limits
        }
    } else {
        serving.limits
    };
    if let Some(ev) = conn.life.check(now, &limits) {
        serving.stats.count_eviction(ev);
        farewell(conn, ev);
        return Sweep::Drop;
    }

    // Park bookkeeping: a connection that did nothing for PARK_AFTER
    // consecutive sweeps AND has been byte-silent for PARK_IDLE_MS of
    // clock time leaves the sweep until its lazy re-arm. The clock gate
    // is what keeps pipelined clients hot: their inter-burst gaps are
    // microseconds, far under the threshold.
    if phase == ConnPhase::Idle && !io_moved && !completed && !conn.closing && !conn.shed {
        conn.idle_sweeps = conn.idle_sweeps.saturating_add(1);
        if conn.idle_sweeps >= PARK_AFTER && conn.life.idle_for(now) >= PARK_IDLE_MS {
            conn.idle_sweeps = 0;
            return Sweep::Park;
        }
    } else {
        conn.idle_sweeps = 0;
    }
    Sweep::Keep
}

/// One worker's event loop: accept a bounded burst (shedding over-cap
/// connections), sweep every registered connection, pace with the
/// poller's idle backoff, exit on the wake token or when a drain
/// completes.
// geo-lint: serve-entry
fn worker_loop(listener: &TcpListener, serving: &Serving, mut poller: Poller) {
    let mut registry: Registry<Conn> = Registry::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut g = serving.handle.current();
    let mut sweep: u64 = 0;
    loop {
        if poller.wake_requested() {
            break;
        }
        sweep = sweep.wrapping_add(1);
        let now = serving.clock.now();
        // Live snapshot reload: one atomic load per sweep; the mutex is
        // touched only on an actual generation swap.
        if serving.handle.generation() != g.number {
            g = serving.handle.current();
        }
        let draining = serving.drain.active.load(Ordering::Acquire);
        let mut progress = false;
        if draining {
            registry.unpark_all();
        } else {
            registry.unpark_due(sweep);
            for _ in 0..ACCEPT_BURST {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        serving.stats.connections.fetch_add(1, Ordering::Relaxed);
                        let live = serving.stats.live.fetch_add(1, Ordering::Relaxed) as usize;
                        // Cap gating: `live` was the count *before* this
                        // accept, so `>=` sheds the (cap+1)-th connection.
                        let shed = live >= serving.limits.max_connections
                            || registry.len() >= serving.limits.max_per_worker;
                        if shed {
                            serving.stats.shed.fetch_add(1, Ordering::Relaxed);
                        }
                        registry.register(Conn::new(stream, now, shed), Interest::READ);
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        for token in registry.tokens() {
            let Some((conn, _)) = registry.get_mut(token) else {
                continue;
            };
            match sweep_conn(
                serving,
                &g,
                conn,
                &mut scratch,
                &mut progress,
                now,
                draining,
            ) {
                Sweep::Keep => {}
                Sweep::Drop => {
                    if registry.deregister(token).is_some() {
                        serving.stats.live.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                Sweep::Park => {
                    registry.park(token, sweep + PARK_RECHECK);
                }
            }
        }
        if draining {
            let since = serving.drain.since.load(Ordering::Acquire);
            if now.saturating_sub(since) >= serving.limits.drain_grace_ms {
                for token in registry.all_tokens() {
                    if let Some(mut conn) = registry.deregister(token) {
                        serving.stats.count_eviction(Eviction::Drain);
                        farewell(&mut conn, Eviction::Drain);
                        serving.stats.live.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            if registry.is_empty() {
                break;
            }
        }
        if progress {
            poller.note_progress();
        } else {
            poller.idle_wait();
        }
    }
}

/// How to spawn a [`QueryServer`]: worker count, caps and deadlines,
/// the deadline clock, and where `RELOAD` re-reads its snapshot.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; 0 means `IPGEO_THREADS` (0/unset: all cores).
    pub workers: usize,
    /// Caps and deadlines.
    pub limits: ServeLimits,
    /// The deadline clock; tests substitute [`ServeClock::manual`].
    pub clock: ServeClock,
    /// Snapshot file the `RELOAD` command re-reads; `None` disables it.
    pub snapshot_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            limits: ServeLimits::default(),
            clock: ServeClock::wall(),
            snapshot_path: None,
        }
    }
}

/// A running query server; dropping the handle does **not** stop it —
/// call [`QueryServer::shutdown`] / [`QueryServer::shutdown_drain`] (or
/// [`QueryServer::wait`] to serve until the process dies).
pub struct QueryServer {
    addr: SocketAddr,
    serving: Arc<Serving>,
    waker: Waker,
    workers: Vec<JoinHandle<()>>,
}

impl QueryServer {
    /// Binds `127.0.0.1:port` (`port` 0 lets the OS choose) and starts
    /// the worker pool, sized from `IPGEO_THREADS` (0/unset: all cores).
    pub fn spawn(store: Arc<DatasetStore>, port: u16) -> io::Result<QueryServer> {
        QueryServer::spawn_with_config(store, port, ServeConfig::default())
    }

    /// As [`spawn`](QueryServer::spawn) with an explicit worker count —
    /// the equivalence tests' hook for comparing 1-vs-N worker response
    /// streams without touching the environment.
    pub fn spawn_with_workers(
        store: Arc<DatasetStore>,
        port: u16,
        workers: usize,
    ) -> io::Result<QueryServer> {
        QueryServer::spawn_with_config(
            store,
            port,
            ServeConfig {
                workers,
                ..ServeConfig::default()
            },
        )
    }

    /// Full-control spawn: caps, deadlines, clock, and `RELOAD` path.
    // geo-lint: worker-bootstrap
    pub fn spawn_with_config(
        store: Arc<DatasetStore>,
        port: u16,
        config: ServeConfig,
    ) -> io::Result<QueryServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            geo_model::runtime::threads()
        } else {
            config.workers
        };
        let serving = Arc::new(Serving {
            handle: Arc::new(StoreHandle::new(store)),
            stats: Arc::new(ServeStats::new()),
            limits: config.limits,
            clock: config.clock,
            drain: DrainState::default(),
            snapshot_path: config.snapshot_path,
            reload: ReloadState::default(),
        });
        let root = Poller::new();
        let waker = root.waker();
        let workers = (0..workers.max(1))
            .map(|_| {
                let listener = listener.try_clone()?;
                let serving = Arc::clone(&serving);
                let poller = Poller::sharing(&root);
                Ok(std::thread::spawn(move || {
                    worker_loop(&listener, &serving, poller);
                }))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(QueryServer {
            addr,
            serving,
            waker,
            workers,
        })
    }

    /// The bound address (real port even when spawned with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.serving.stats.snapshot()
    }

    /// Hot-prefix cache traffic since spawn, summed across generations.
    pub fn cache_stats(&self) -> crate::cache::CacheCounters {
        self.serving.handle.cache_counters()
    }

    /// The live snapshot generation number.
    pub fn generation(&self) -> u64 {
        self.serving.handle.generation()
    }

    /// Atomically installs `store` as the next serving generation (the
    /// programmatic twin of the `RELOAD` command); returns the new
    /// generation number. In-flight connections are never dropped:
    /// each worker swaps at its next sweep boundary.
    pub fn reload(&self, store: Arc<DatasetStore>) -> u64 {
        self.serving.handle.install(store)
    }

    /// Hard shutdown: fires the wake token and joins every worker.
    /// Each worker observes the token at the top of its next sweep, so
    /// teardown needs no wake-up connection and no read timeouts.
    /// In-flight connections are cut, not drained.
    pub fn shutdown(mut self) {
        self.waker.wake();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Graceful drain: stop accepting, close idle connections, finish
    /// in-flight frames/lines up to [`ServeLimits::drain_grace_ms`],
    /// then evict stragglers (typed `drain-deadline` farewell) and join
    /// every worker.
    pub fn shutdown_drain(mut self) {
        self.serving
            .drain
            .since
            .store(self.serving.clock.now(), Ordering::Release);
        self.serving.drain.active.store(true, Ordering::Release);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Blocks until the workers exit — the `ipgeo serve` foreground
    /// mode, ended only by killing the process.
    pub fn wait(mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One-shot client: sends a single protocol line to a running server and
/// returns the one-line reply. This is the `ipgeo query --server` path and
/// the integration tests' client primitive.
pub fn query_one(addr: &str, command: &str) -> io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    writer.write_all(format!("{command}\n").as_bytes())?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    // geo-lint: allow(R4, reason = "blocking read in the one-shot client primitive, not the serving path")
    reader.read_line(&mut reply)?;
    Ok(reply.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::ClockHandle;
    use crate::proto::{BinaryClient, Response};
    use geo_model::ip::{Ipv4, Prefix24};
    use geo_model::point::GeoPoint;
    use ipgeo::publish::{DatasetEntry, Evidence};
    use std::time::Duration;

    fn store() -> DatasetStore {
        let entries = vec![
            DatasetEntry {
                prefix: Prefix24(0x0A0A0A),
                location: GeoPoint::new(48.85, 2.35),
                evidence: Evidence::DnsHint {
                    hostname: "par1.example.net".into(),
                },
            },
            DatasetEntry {
                prefix: Prefix24(0x0A0A10),
                location: GeoPoint::new(-33.9, 151.2),
                evidence: Evidence::Whois,
            },
        ];
        DatasetStore::from_entries(&entries, 3, 1)
    }

    fn test_serving(store: DatasetStore) -> (Serving, Arc<Generation>) {
        let handle = Arc::new(StoreHandle::new(Arc::new(store)));
        let g = handle.current();
        let serving = Serving {
            handle,
            stats: Arc::new(ServeStats::new()),
            limits: ServeLimits::default(),
            clock: ServeClock::wall(),
            drain: DrainState::default(),
            snapshot_path: None,
            reload: ReloadState::default(),
        };
        (serving, g)
    }

    /// Polls `cond` for up to ~2 s without wall-clock reads.
    fn eventually(mut cond: impl FnMut() -> bool) -> bool {
        for _ in 0..1000 {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        false
    }

    #[test]
    fn protocol_lines() {
        let (serving, g) = test_serving(store());
        let respond = |line: &str| serving.respond(&g, line);
        let (hit, close) = respond("LOCATE 10.10.10.200");
        assert!(!close);
        assert_eq!(
            hit,
            "OK 10.10.10.0/24,48.8500,2.3500,dns-hint,0.90,hostname=par1.example.net"
        );
        let (miss, _) = respond("LOCATE 9.9.9.9");
        assert_eq!(miss, "MISS 9.9.9.9");
        let (near, _) = respond("NEAREST 10.10.11.1");
        assert!(near.starts_with("OK 10.10.10.0/24"), "{near}");
        assert!(near.ends_with("distance=1"), "{near}");
        let (stats_line, _) = respond("STATS");
        assert!(
            stats_line.starts_with("OK entries=2 hits=2 misses=1"),
            "{stats_line}"
        );
        assert!(stats_line.contains(" generation=1 "), "{stats_line}");
        assert!(stats_line.contains(" shed=0 "), "{stats_line}");
        assert!(
            stats_line.ends_with(" evicted=0 proto_errors=0 reload_failed=0"),
            "{stats_line}"
        );
        assert_eq!(respond("QUIT"), ("BYE".into(), true));
        assert!(respond("LOCATE not-an-ip").0.starts_with("ERR"));
        assert!(respond("TELEPORT 1.2.3.4").0.starts_with("ERR"));
        assert!(respond("").0.starts_with("ERR"));
        // RELOAD without a configured path is refused, not a panic.
        assert!(respond("RELOAD").0.starts_with("ERR reload:"));
    }

    #[test]
    fn cached_line_answers_are_byte_identical() {
        let (serving, g) = test_serving(store());
        let mut cold = Vec::new();
        let close = serving.respond_line_into(&g, "LOCATE 10.10.10.200", &mut cold);
        assert!(!close);
        let mut warm = Vec::new();
        serving.respond_line_into(&g, "LOCATE 10.10.10.200", &mut warm);
        assert_eq!(cold, warm);
        assert_eq!(serving.stats.snapshot().hits, 2);
        // Misses bypass the cache (the reply embeds the exact ip).
        let mut miss = Vec::new();
        serving.respond_line_into(&g, "LOCATE 9.9.9.9", &mut miss);
        assert_eq!(miss, b"MISS 9.9.9.9\n");
        assert_eq!(g.cache.counters().hits, 1);
    }

    #[test]
    fn serves_over_a_real_socket() {
        let server = QueryServer::spawn(Arc::new(store()), 0).unwrap();
        let addr = server.addr().to_string();
        let reply = query_one(&addr, "LOCATE 10.10.10.1").unwrap();
        assert!(reply.starts_with("OK 10.10.10.0/24"), "{reply}");
        let reply = query_one(&addr, "STATS").unwrap();
        assert!(reply.contains("hits=1"), "{reply}");
        let stats = server.stats();
        assert_eq!(stats.hits, 1);
        assert!(stats.connections >= 2);
        server.shutdown();
        // The port is released after shutdown: a fresh connect must fail
        // or be refused service; either way, no reply arrives.
        assert!(query_one(&addr, "LOCATE 10.10.10.1").is_err());
    }

    #[test]
    fn serves_the_binary_protocol_on_the_same_port() {
        let server = QueryServer::spawn(Arc::new(store()), 0).unwrap();
        let addr = server.addr().to_string();
        let mut client = BinaryClient::connect(&addr).unwrap();
        let ips = vec![Prefix24(0x0A0A0A).host(1), Ipv4(0x0909_0909)];
        let Response::Records { opcode, records } = client.query(Opcode::Locate, &ips).unwrap()
        else {
            panic!("expected records");
        };
        assert_eq!(opcode, Opcode::Locate);
        assert_eq!(records.len(), 2);
        assert!(records[0].hit);
        assert_eq!(records[0].prefix, Prefix24(0x0A0A0A));
        assert_eq!(records[0].lat(), 48.85);
        assert!(!records[1].hit);

        let Response::Records { records, .. } = client
            .query(Opcode::Nearest, &[Prefix24(0x0A0A0B).host(9)])
            .unwrap()
        else {
            panic!("expected records");
        };
        assert_eq!(
            (records[0].prefix, records[0].distance),
            (Prefix24(0x0A0A0A), 1)
        );

        let Response::Stats(s) = client.query(Opcode::Stats, &[]).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(s.entries, 2);
        assert_eq!(s.hits + s.misses, 3);
        // Revision 3: the robustness counters ride in the binary STATS
        // body too, so ops tooling on this protocol sees shedding and
        // evictions with text-line fidelity.
        assert_eq!(s.generation, 1);
        assert!(s.live >= 1, "live={}", s.live);
        assert_eq!((s.shed, s.evicted, s.proto_errors, s.reload_failed), (0, 0, 0, 0));

        // A line-protocol client still works on the very same port.
        let reply = query_one(&addr, "LOCATE 10.10.10.1").unwrap();
        assert!(reply.starts_with("OK"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn malformed_binary_frame_gets_a_typed_error_then_close() {
        let server = QueryServer::spawn(Arc::new(store()), 0).unwrap();
        let addr = server.addr().to_string();
        let mut stream = TcpStream::connect(&addr).unwrap();
        // Valid header shape, hostile length field.
        let mut frame = vec![proto::REQ_MAGIC, proto::PROTO_VERSION, 1, 0];
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        stream.write_all(&frame).unwrap();
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).unwrap();
        let proto::Decoded::Frame(resp, _) = proto::try_decode_response(&reply).unwrap() else {
            panic!("expected a complete error frame");
        };
        assert!(matches!(resp, Response::Error(msg) if msg.contains("budget")));
        assert!(eventually(|| server.stats().proto_errors == 1));
        server.shutdown();
    }

    /// A nonblocking socket pair: the accepted end wrapped as a [`Conn`]
    /// for driving [`sweep_conn`] directly, plus the client end.
    fn conn_pair() -> (Conn, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_end, _) = listener.accept().unwrap();
        server_end.set_nonblocking(true).unwrap();
        (Conn::new(server_end, 0, false), client)
    }

    /// Regression: a malformed frame on a connection whose backlog
    /// cannot flush must be counted and answered exactly once — before
    /// the `closing` parse gate, every sweep re-parsed the same bytes,
    /// re-counting proto_errors and appending a duplicate error frame
    /// until the write deadline fired.
    #[test]
    fn stuck_backlog_never_reparses_a_malformed_frame() {
        let (serving, g) = test_serving(store());
        let (mut conn, mut client) = conn_pair();
        // A backlog far past the socket buffers keeps the connection in
        // the closing-but-unflushed state the re-parse bug needed.
        conn.out = vec![0u8; 3 * 1024 * 1024];
        let mut frame = vec![proto::REQ_MAGIC, proto::PROTO_VERSION, 1, 0];
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        client.write_all(&frame).unwrap();

        let mut scratch = vec![0u8; READ_CHUNK];
        let mut progress = false;
        assert!(eventually(|| {
            sweep_conn(&serving, &g, &mut conn, &mut scratch, &mut progress, 0, false);
            serving.stats.snapshot().proto_errors >= 1
        }));
        assert!(conn.closing);
        // The malformed bytes are behind the gate now: further sweeps
        // with the backlog still stuck add nothing.
        assert!(conn.inbuf.is_empty(), "unparsed bytes kept: {}", conn.inbuf.len());
        let queued = conn.out.len();
        for _ in 0..50 {
            sweep_conn(&serving, &g, &mut conn, &mut scratch, &mut progress, 0, false);
        }
        assert_eq!(serving.stats.snapshot().proto_errors, 1);
        assert_eq!(conn.out.len(), queued, "duplicate error frames appended");
    }

    /// Input pipelined after QUIT is never interpreted, no matter how
    /// many sweeps the farewell takes to flush — the answered stream
    /// stays a pure function of the request stream, not of flush timing.
    #[test]
    fn input_after_quit_is_not_interpreted() {
        let (serving, g) = test_serving(store());
        let (mut conn, mut client) = conn_pair();
        conn.out = vec![0u8; 3 * 1024 * 1024];
        client.write_all(b"QUIT\nLOCATE 10.10.10.1\n").unwrap();

        let mut scratch = vec![0u8; READ_CHUNK];
        let mut progress = false;
        assert!(eventually(|| {
            sweep_conn(&serving, &g, &mut conn, &mut scratch, &mut progress, 0, false);
            conn.closing
        }));
        for _ in 0..50 {
            sweep_conn(&serving, &g, &mut conn, &mut scratch, &mut progress, 0, false);
        }
        let s = serving.stats.snapshot();
        assert_eq!((s.hits, s.misses), (0, 0), "a post-QUIT command was answered");
    }

    #[test]
    fn reload_command_is_async_and_rate_limited() {
        let path = std::env::temp_dir().join(format!(
            "igds-reload-test-{}.igds",
            std::process::id()
        ));
        let fresh = vec![DatasetEntry {
            prefix: Prefix24(0x0B0B0B),
            location: GeoPoint::new(1.0, 2.0),
            evidence: Evidence::Whois,
        }];
        std::fs::write(&path, crate::format::encode(&fresh, 5, 5)).unwrap();

        let (clock, handle) = ServeClock::manual();
        let config = ServeConfig {
            workers: 1,
            limits: ServeLimits {
                reload_min_interval_ms: 500,
                ..ServeLimits::default()
            },
            clock,
            snapshot_path: Some(path.clone()),
        };
        let server = QueryServer::spawn_with_config(Arc::new(store()), 0, config).unwrap();
        let addr = server.addr().to_string();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut w = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = |cmd: &str| {
            w.write_all(format!("{cmd}\n").as_bytes()).unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            reply.trim_end().to_string()
        };

        // The reply is immediate — the snapshot load runs off the event
        // loop — and the swap lands in the background.
        assert_eq!(line("RELOAD"), "OK reload=scheduled generation=1");
        assert!(eventually(|| server.generation() == 2));
        // The same connection answers from the new snapshot.
        assert!(eventually(|| {
            line("LOCATE 11.11.11.1").starts_with("OK 11.11.11.0/24")
        }));

        // Inside the rate window a second RELOAD is refused...
        assert!(
            line("RELOAD").starts_with("ERR reload: rate-limited"),
            "rate limit did not hold"
        );
        assert_eq!(server.generation(), 2);
        // ...and accepted again once the clock clears it.
        handle.advance(500);
        assert_eq!(line("RELOAD"), "OK reload=scheduled generation=2");
        assert!(eventually(|| server.generation() == 3));
        assert_eq!(server.stats().reload_failed, 0);

        // An unreadable snapshot fails in the background: the counter
        // moves, the serving generation does not.
        std::fs::write(&path, b"not a snapshot").unwrap();
        handle.advance(500);
        assert!(line("RELOAD").starts_with("OK reload=scheduled"));
        assert!(eventually(|| server.stats().reload_failed == 1));
        assert_eq!(server.generation(), 3);

        server.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oversized_line_is_rejected_with_too_large() {
        let server = QueryServer::spawn_with_workers(Arc::new(store()), 0, 1).unwrap();
        let addr = server.addr().to_string();
        let mut stream = TcpStream::connect(&addr).unwrap();
        // A newline-free flood one chunk past the shared input budget.
        let junk = vec![b'A'; LINE_BUDGET + READ_CHUNK];
        stream.write_all(&junk).unwrap();
        let mut reply = String::new();
        BufReader::new(&mut stream).read_line(&mut reply).unwrap();
        assert!(reply.starts_with("ERR too-large"), "{reply}");
        assert!(eventually(|| server.stats().evicted_too_large == 1));
        server.shutdown();
    }

    #[test]
    fn over_cap_connections_are_shed_with_busy() {
        let config = ServeConfig {
            workers: 1,
            limits: ServeLimits {
                max_connections: 2,
                ..ServeLimits::default()
            },
            ..ServeConfig::default()
        };
        let server = QueryServer::spawn_with_config(Arc::new(store()), 0, config).unwrap();
        let addr = server.addr().to_string();

        // Fill the cap with two established, confirmed connections.
        let mut held = Vec::new();
        for _ in 0..2 {
            let stream = TcpStream::connect(&addr).unwrap();
            let mut w = stream.try_clone().unwrap();
            w.write_all(b"LOCATE 10.10.10.1\n").unwrap();
            let mut reply = String::new();
            let mut reader = BufReader::new(stream);
            reader.read_line(&mut reply).unwrap();
            assert!(reply.starts_with("OK"), "{reply}");
            held.push((reader, w));
        }

        // The third connection is shed in the line protocol...
        let reply = query_one(&addr, "STATS").unwrap();
        assert_eq!(reply, "ERR busy");

        // ...and the fourth in the binary protocol.
        let mut client = BinaryClient::connect(&addr).unwrap();
        let resp = client.query(Opcode::Stats, &[]).unwrap();
        assert_eq!(resp, Response::Busy);

        assert!(eventually(|| server.stats().shed == 2));
        // The held connections were never disturbed.
        let (reader, w) = &mut held[0];
        w.write_all(b"LOCATE 10.10.10.1\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.starts_with("OK"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn reload_swaps_generations_without_dropping_connections() {
        let server = QueryServer::spawn_with_workers(Arc::new(store()), 0, 2).unwrap();
        let addr = server.addr().to_string();

        // A long-lived connection established before the reload.
        let stream = TcpStream::connect(&addr).unwrap();
        let mut w = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let line = |cmd: &str, reader: &mut BufReader<TcpStream>, w: &mut TcpStream| {
            w.write_all(format!("{cmd}\n").as_bytes()).unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            reply.trim_end().to_string()
        };
        assert!(line("LOCATE 10.10.10.1", &mut reader, &mut w).starts_with("OK 10.10.10.0/24"));

        // Swap in a one-entry snapshot mid-connection.
        let fresh = DatasetStore::from_entries(
            &[DatasetEntry {
                prefix: Prefix24(0x0B0B0B),
                location: GeoPoint::new(1.0, 2.0),
                evidence: Evidence::Whois,
            }],
            9,
            9,
        );
        assert_eq!(server.reload(Arc::new(fresh)), 2);
        assert_eq!(server.generation(), 2);

        // The same connection keeps working and now answers from the
        // new generation; STATS reports the swap.
        assert!(eventually(|| {
            line("LOCATE 11.11.11.1", &mut reader, &mut w).starts_with("OK 11.11.11.0/24")
        }));
        assert_eq!(
            line("LOCATE 10.10.10.1", &mut reader, &mut w),
            "MISS 10.10.10.1"
        );
        let stats_line = line("STATS", &mut reader, &mut w);
        assert!(stats_line.contains("entries=1"), "{stats_line}");
        assert!(stats_line.contains(" generation=2 "), "{stats_line}");
        server.shutdown();
    }

    #[test]
    fn manual_clock_evicts_idle_and_stalled_connections() {
        let (clock, handle): (ServeClock, ClockHandle) = ServeClock::manual();
        let config = ServeConfig {
            workers: 1,
            limits: ServeLimits {
                idle_timeout_ms: 100,
                read_timeout_ms: 40,
                ..ServeLimits::default()
            },
            clock,
            ..ServeConfig::default()
        };
        let server = QueryServer::spawn_with_config(Arc::new(store()), 0, config).unwrap();
        let addr = server.addr().to_string();

        // An idle line connection (mode decided, then silence)...
        let idle = TcpStream::connect(&addr).unwrap();
        let mut w = idle.try_clone().unwrap();
        w.write_all(b"LOCATE 10.10.10.1\n").unwrap();
        let mut reader = BufReader::new(idle);
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.starts_with("OK"), "{reply}");

        // ...and a slow-loris: a partial frame that never completes.
        let mut loris = TcpStream::connect(&addr).unwrap();
        loris
            .write_all(&[proto::REQ_MAGIC, proto::PROTO_VERSION])
            .unwrap();
        assert!(eventually(|| server.stats().live == 2));

        // Nothing is evicted while the clock stands still...
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(server.stats().evicted_total(), 0);

        // ...and both deadlines fire once it advances.
        handle.advance(150);
        assert!(eventually(|| {
            let s = server.stats();
            s.evicted_idle == 1 && s.evicted_stalled == 1
        }));
        // The idle connection got its typed farewell before the close.
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(reply.trim_end(), "ERR evicted: idle-timeout");
        assert!(eventually(|| server.stats().live == 0));
        server.shutdown();
    }

    #[test]
    fn drain_shutdown_finishes_in_flight_then_exits() {
        let config = ServeConfig {
            workers: 2,
            limits: ServeLimits {
                drain_grace_ms: 500,
                ..ServeLimits::default()
            },
            ..ServeConfig::default()
        };
        let server = QueryServer::spawn_with_config(Arc::new(store()), 0, config).unwrap();
        let addr = server.addr().to_string();
        // An idle connection parked before the drain begins.
        let parked = TcpStream::connect(&addr).unwrap();
        let mut w = parked.try_clone().unwrap();
        w.write_all(b"LOCATE 10.10.10.1\n").unwrap();
        let mut reader = BufReader::new(parked);
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.starts_with("OK"), "{reply}");
        assert!(eventually(|| server.stats().live == 1));

        server.shutdown_drain();
        // The drained server closed the idle connection gracefully (EOF,
        // no farewell — it was not evicted).
        reply.clear();
        assert_eq!(reader.read_line(&mut reply).unwrap(), 0);
        // And new connects are refused: the listener is gone.
        assert!(query_one(&addr, "STATS").is_err());
    }

    #[test]
    // Wall-clock promptness check, not simulation state.
    #[allow(clippy::disallowed_methods)]
    fn shutdown_is_prompt_with_an_idle_connection_parked() {
        let server = QueryServer::spawn_with_workers(Arc::new(store()), 0, 2).unwrap();
        let addr = server.addr().to_string();
        // Park a connection that never sends anything: the wake token
        // must still tear the server down without a dummy connection.
        let _idle = TcpStream::connect(&addr).unwrap();
        let started = std::time::Instant::now();
        server.shutdown();
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "wake-token shutdown took {:?}",
            started.elapsed()
        );
    }
}
