//! A concurrent TCP query server over a [`DatasetStore`].
//!
//! Thread-per-connection on `std::net` (the workspace is offline and
//! vendored-only, so no async runtime), speaking a newline-delimited text
//! protocol:
//!
//! ```text
//! LOCATE <ip>    -> OK <prefix,lat,lon,method,evidence>   exact /24 hit
//!                   MISS <ip>                             no covering entry
//! NEAREST <ip>   -> OK <row> distance=<n>                 nearest prefix, /24 steps
//! STATS          -> OK entries=.. hits=.. misses=.. connections=.. uptime_s=.. qps=..
//! QUIT           -> BYE                                   closes the connection
//! anything else  -> ERR <reason>
//! ```
//!
//! Hit/miss/connection counters are relaxed atomics (monotonic counters,
//! no cross-counter invariant to protect). Shutdown is graceful: the stop
//! flag is raised, a wake-up connection unblocks `accept`, and every
//! connection thread is joined — reads poll with a short timeout so an
//! idle client cannot stall teardown.

use crate::store::DatasetStore;
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked connection reads re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Live counters of a running server.
#[derive(Debug)]
pub struct ServeStats {
    hits: AtomicU64,
    misses: AtomicU64,
    connections: AtomicU64,
    started: Instant,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Queries answered from the store.
    pub hits: u64,
    /// Queries with no covering entry.
    pub misses: u64,
    /// Connections accepted so far.
    pub connections: u64,
    /// Seconds since the server started.
    pub uptime_s: f64,
}

impl StatsSnapshot {
    /// Total queries answered.
    pub fn queries(&self) -> u64 {
        self.hits + self.misses
    }

    /// Mean queries per second over the server's uptime.
    pub fn qps(&self) -> f64 {
        if self.uptime_s > 0.0 {
            self.queries() as f64 / self.uptime_s
        } else {
            0.0
        }
    }
}

impl ServeStats {
    // Server uptime is a wall-clock serving statistic, not simulation
    // state; exempt from the workspace timing ban (see clippy.toml).
    #[allow(clippy::disallowed_methods)]
    fn new() -> ServeStats {
        ServeStats {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            uptime_s: self.started.elapsed().as_secs_f64(),
        }
    }
}

/// Computes the one-line response to a protocol line. Pure with respect to
/// the connection (only counters mutate), so it is unit-testable without a
/// socket. The second return is `true` when the connection should close.
fn respond(store: &DatasetStore, stats: &ServeStats, line: &str) -> (String, bool) {
    let mut words = line.split_whitespace();
    match words.next() {
        Some("LOCATE") => match words.next().map(str::parse) {
            Some(Ok(ip)) => match store.lookup(ip) {
                Some(entry) => {
                    stats.hits.fetch_add(1, Ordering::Relaxed);
                    (format!("OK {entry}"), false)
                }
                None => {
                    stats.misses.fetch_add(1, Ordering::Relaxed);
                    (format!("MISS {ip}"), false)
                }
            },
            Some(Err(e)) => (format!("ERR {e}"), false),
            None => ("ERR LOCATE needs an <ip>".into(), false),
        },
        Some("NEAREST") => match words.next().map(str::parse) {
            Some(Ok(ip)) => match store.lookup_nearest(ip) {
                Some((entry, dist)) => {
                    stats.hits.fetch_add(1, Ordering::Relaxed);
                    (format!("OK {entry} distance={dist}"), false)
                }
                None => {
                    stats.misses.fetch_add(1, Ordering::Relaxed);
                    (format!("MISS {ip}"), false)
                }
            },
            Some(Err(e)) => (format!("ERR {e}"), false),
            None => ("ERR NEAREST needs an <ip>".into(), false),
        },
        Some("STATS") => {
            let s = stats.snapshot();
            (
                format!(
                    "OK entries={} hits={} misses={} connections={} uptime_s={:.3} qps={:.1}",
                    store.len(),
                    s.hits,
                    s.misses,
                    s.connections,
                    s.uptime_s,
                    s.qps()
                ),
                false,
            )
        }
        Some("QUIT") => ("BYE".into(), true),
        Some(other) => (
            format!("ERR unknown command `{other}` (LOCATE|NEAREST|STATS|QUIT)"),
            false,
        ),
        None => ("ERR empty command".into(), false),
    }
}

fn handle_connection(
    stream: TcpStream,
    store: &DatasetStore,
    stats: &ServeStats,
    stop: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let (mut reply, close) = respond(store, stats, line.trim());
                line.clear();
                // One write per reply: split writes would leave the
                // trailing newline to Nagle + delayed-ACK (~40 ms).
                reply.push('\n');
                if writer.write_all(reply.as_bytes()).is_err() || close {
                    break;
                }
            }
            // A timeout keeps any partial line accumulated in `line`;
            // it only gives us a chance to notice shutdown.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// A running query server; dropping the handle does **not** stop it —
/// call [`QueryServer::shutdown`] (or [`QueryServer::wait`] to serve
/// until the process dies).
pub struct QueryServer {
    addr: SocketAddr,
    stats: Arc<ServeStats>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl QueryServer {
    /// Binds `127.0.0.1:port` (`port` 0 lets the OS choose) and starts
    /// accepting connections, one handler thread per client.
    pub fn spawn(store: Arc<DatasetStore>, port: u16) -> io::Result<QueryServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServeStats::new());
        let stop = Arc::new(AtomicBool::new(false));

        let accept = {
            let (stats, stop) = (stats.clone(), stop.clone());
            std::thread::spawn(move || {
                let workers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
                for stream in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    stats.connections.fetch_add(1, Ordering::Relaxed);
                    let (store, stats, stop) = (store.clone(), stats.clone(), stop.clone());
                    let worker = std::thread::spawn(move || {
                        handle_connection(stream, &store, &stats, &stop);
                    });
                    // A panicking worker poisons the registry; recover the
                    // guard so one bad connection never wedges accept.
                    workers
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(worker);
                }
                let workers = workers
                    .into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                for worker in workers {
                    let _ = worker.join();
                }
            })
        };

        Ok(QueryServer {
            addr,
            stats,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (real port even when spawned with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Graceful shutdown: raises the stop flag, unblocks `accept` with a
    /// wake-up connection, and joins the accept thread (which joins every
    /// connection thread).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Blocks on the accept loop forever — the `ipgeo serve` foreground
    /// mode, ended only by killing the process.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// One-shot client: sends a single protocol line to a running server and
/// returns the one-line reply. This is the `ipgeo query --server` path and
/// the integration tests' client primitive.
pub fn query_one(addr: &str, command: &str) -> io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    writer.write_all(format!("{command}\n").as_bytes())?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply)?;
    Ok(reply.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::ip::Prefix24;
    use geo_model::point::GeoPoint;
    use ipgeo::publish::{DatasetEntry, Evidence};

    fn store() -> DatasetStore {
        let entries = vec![
            DatasetEntry {
                prefix: Prefix24(0x0A0A0A),
                location: GeoPoint::new(48.85, 2.35),
                evidence: Evidence::DnsHint {
                    hostname: "par1.example.net".into(),
                },
            },
            DatasetEntry {
                prefix: Prefix24(0x0A0A10),
                location: GeoPoint::new(-33.9, 151.2),
                evidence: Evidence::Whois,
            },
        ];
        DatasetStore::from_entries(&entries, 3, 1)
    }

    #[test]
    fn protocol_lines() {
        let s = store();
        let stats = ServeStats::new();
        let (hit, close) = respond(&s, &stats, "LOCATE 10.10.10.200");
        assert!(!close);
        assert_eq!(
            hit,
            "OK 10.10.10.0/24,48.8500,2.3500,dns-hint,hostname=par1.example.net"
        );
        let (miss, _) = respond(&s, &stats, "LOCATE 9.9.9.9");
        assert_eq!(miss, "MISS 9.9.9.9");
        let (near, _) = respond(&s, &stats, "NEAREST 10.10.11.1");
        assert!(near.starts_with("OK 10.10.10.0/24"), "{near}");
        assert!(near.ends_with("distance=1"), "{near}");
        let (stats_line, _) = respond(&s, &stats, "STATS");
        assert!(
            stats_line.starts_with("OK entries=2 hits=2 misses=1"),
            "{stats_line}"
        );
        assert_eq!(respond(&s, &stats, "QUIT"), ("BYE".into(), true));
        assert!(respond(&s, &stats, "LOCATE not-an-ip").0.starts_with("ERR"));
        assert!(respond(&s, &stats, "TELEPORT 1.2.3.4").0.starts_with("ERR"));
        assert!(respond(&s, &stats, "").0.starts_with("ERR"));
    }

    #[test]
    fn serves_over_a_real_socket() {
        let server = QueryServer::spawn(Arc::new(store()), 0).unwrap();
        let addr = server.addr().to_string();
        let reply = query_one(&addr, "LOCATE 10.10.10.1").unwrap();
        assert!(reply.starts_with("OK 10.10.10.0/24"), "{reply}");
        let reply = query_one(&addr, "STATS").unwrap();
        assert!(reply.contains("hits=1"), "{reply}");
        let stats = server.stats();
        assert_eq!(stats.hits, 1);
        assert!(stats.connections >= 2);
        server.shutdown();
        // The port is released after shutdown: a fresh connect must fail
        // or be refused service; either way, no reply arrives.
        assert!(query_one(&addr, "LOCATE 10.10.10.1").is_err());
    }
}
