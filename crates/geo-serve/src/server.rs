//! A readiness-driven TCP query server over a [`DatasetStore`].
//!
//! Architecture (DESIGN.md §11): a fixed pool of event-loop workers —
//! sized from `IPGEO_THREADS` via [`geo_model::runtime::threads`] — each
//! sweeping its own set of nonblocking connections registered in a
//! [`poll::Registry`]. No thread is ever spawned per connection and no
//! serving-path read blocks; the workspace denies `unsafe_code`, so the
//! sweep is a safe-`std` readiness scan paced by [`poll::Poller`]'s
//! adaptive idle backoff instead of an OS poller.
//!
//! Every connection speaks one of two protocols, chosen by its first
//! byte ([`proto::REQ_MAGIC`] opens a binary conversation, anything else
//! is the line protocol):
//!
//! ```text
//! LOCATE <ip>    -> OK <prefix,lat,lon,method,confidence,evidence>   exact /24 hit
//!                   MISS <ip>                             no covering entry
//! NEAREST <ip>   -> OK <row> distance=<n>                 nearest prefix, /24 steps
//! STATS          -> OK entries=.. hits=.. misses=.. connections=.. uptime_s=.. qps=..
//! QUIT           -> BYE                                   closes the connection
//! anything else  -> ERR <reason>
//! ```
//!
//! plus the batched/pipelined binary protocol of [`proto`]. Both paths
//! read answers through the shared [`HotCache`]; cached answers are
//! byte-identical to store answers by construction, so the cache is
//! invisible in the response stream.
//!
//! **Determinism lives in responses, not scheduling**: frames and lines
//! on one connection are processed in arrival order and answered in
//! order, so each connection's response byte stream is a pure function
//! of `(snapshot, its own request stream)` — regardless of worker
//! count, connection interleaving, or pipelining depth. Which *worker*
//! serves a connection races; what the connection *reads back* never
//! does.
//!
//! Hit/miss/connection counters are relaxed atomics (monotonic, no
//! cross-counter invariant). Shutdown is the poller's wake token: one
//! shared flag flipped by [`poll::Waker::wake`], observed by every
//! worker at the top of its next sweep — no dummy wake-up connection.

use crate::cache::{CacheKind, CacheValue, HotCache};
use crate::format::method_tag;
use crate::poll::{Interest, Poller, Registry, Waker};
use crate::proto::{
    self, encode_error, try_decode_request, LocateRecord, Opcode, Request, ResponseWriter,
    StatsRecord,
};
use crate::store::DatasetStore;
use ipgeo::publish::DatasetEntry;
use std::io::{self, BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Per-sweep read chunk. One syscall per ready connection per sweep in
/// the common case; a connection with more than this buffered keeps the
/// sweep's attention until it drains.
const READ_CHUNK: usize = 64 * 1024;

/// Longest accepted text-protocol line. Anything longer without a
/// newline is answered with `ERR` and the connection closed.
const MAX_LINE: usize = 64 * 1024;

/// Input buffered for one connection before we stop reading it until
/// the parser catches up (largest binary frame plus headroom).
const MAX_INBUF: usize = proto::MAX_BODY + 64 * 1024;

/// Output backlog at which a connection stops having its input parsed:
/// a client that pipelines faster than it reads must absorb its own
/// backpressure rather than ballooning server memory.
const WRITE_HIGH_WATER: usize = 4 * 1024 * 1024;

/// New connections accepted per worker per sweep; bounds accept
/// starvation of existing connections under a connect flood.
const ACCEPT_BURST: usize = 64;

/// Live counters of a running server.
#[derive(Debug)]
pub struct ServeStats {
    hits: AtomicU64,
    misses: AtomicU64,
    connections: AtomicU64,
    started: Instant,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Queries answered from the store.
    pub hits: u64,
    /// Queries with no covering entry.
    pub misses: u64,
    /// Connections accepted so far.
    pub connections: u64,
    /// Seconds since the server started.
    pub uptime_s: f64,
}

impl StatsSnapshot {
    /// Total queries answered.
    pub fn queries(&self) -> u64 {
        self.hits + self.misses
    }

    /// Mean queries per second over the server's uptime.
    pub fn qps(&self) -> f64 {
        if self.uptime_s > 0.0 {
            self.queries() as f64 / self.uptime_s
        } else {
            0.0
        }
    }
}

impl ServeStats {
    // Server uptime is a wall-clock serving statistic, not simulation
    // state; exempt from the workspace timing ban (see clippy.toml).
    #[allow(clippy::disallowed_methods)]
    fn new() -> ServeStats {
        ServeStats {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            uptime_s: self.started.elapsed().as_secs_f64(),
        }
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Computes the one-line response to a protocol line. Pure with respect to
/// the connection (only counters mutate), so it is unit-testable without a
/// socket. The second return is `true` when the connection should close.
fn respond(store: &DatasetStore, stats: &ServeStats, line: &str) -> (String, bool) {
    let mut words = line.split_whitespace();
    match words.next() {
        Some("LOCATE") => match words.next().map(str::parse) {
            Some(Ok(ip)) => match store.lookup(ip) {
                Some(entry) => {
                    stats.hits.fetch_add(1, Ordering::Relaxed);
                    (format!("OK {entry}"), false)
                }
                None => {
                    stats.misses.fetch_add(1, Ordering::Relaxed);
                    (format!("MISS {ip}"), false)
                }
            },
            Some(Err(e)) => (format!("ERR {e}"), false),
            None => ("ERR LOCATE needs an <ip>".into(), false),
        },
        Some("NEAREST") => match words.next().map(str::parse) {
            Some(Ok(ip)) => match store.lookup_nearest(ip) {
                Some((entry, dist)) => {
                    stats.hits.fetch_add(1, Ordering::Relaxed);
                    (format!("OK {entry} distance={dist}"), false)
                }
                None => {
                    stats.misses.fetch_add(1, Ordering::Relaxed);
                    (format!("MISS {ip}"), false)
                }
            },
            Some(Err(e)) => (format!("ERR {e}"), false),
            None => ("ERR NEAREST needs an <ip>".into(), false),
        },
        Some("STATS") => {
            let s = stats.snapshot();
            (
                format!(
                    "OK entries={} hits={} misses={} connections={} uptime_s={:.3} qps={:.1}",
                    store.len(),
                    s.hits,
                    s.misses,
                    s.connections,
                    s.uptime_s,
                    s.qps()
                ),
                false,
            )
        }
        Some("QUIT") => ("BYE".into(), true),
        Some(other) => (
            format!("ERR unknown command `{other}` (LOCATE|NEAREST|STATS|QUIT)"),
            false,
        ),
        None => ("ERR empty command".into(), false),
    }
}

/// Everything one worker needs to answer queries; shared by `Arc`.
struct Serving {
    store: Arc<DatasetStore>,
    stats: Arc<ServeStats>,
    cache: Arc<HotCache>,
}

impl Serving {
    /// Answers a text-protocol line straight into the output buffer,
    /// serving `OK` answers for well-formed single-address LOCATE /
    /// NEAREST from the [`HotCache`] (byte-identical to the store path).
    /// Returns `true` when the connection should close.
    fn respond_line_into(&self, line: &str, out: &mut Vec<u8>) -> bool {
        let mut words = line.split_whitespace();
        let cached = match (words.next(), words.next(), words.next()) {
            (Some(verb @ ("LOCATE" | "NEAREST")), Some(ip_str), None) => {
                ip_str.parse::<geo_model::ip::Ipv4>().ok().map(|ip| {
                    let kind = if verb == "LOCATE" {
                        CacheKind::LineLocate
                    } else {
                        CacheKind::LineNearest
                    };
                    (kind, ip.prefix24().0)
                })
            }
            _ => None,
        };
        if let Some((kind, prefix)) = cached {
            if let Some(CacheValue::Line(reply)) = self.cache.get(kind, prefix) {
                // Only `OK` lines are admitted, so a cache hit is a store hit.
                self.stats.count(true);
                out.extend_from_slice(reply.as_bytes());
                out.push(b'\n');
                return false;
            }
        }
        let (reply, close) = respond(&self.store, &self.stats, line);
        if let Some((kind, prefix)) = cached {
            if reply.starts_with("OK ") {
                self.cache
                    .put(kind, prefix, CacheValue::Line(reply.as_str().into()));
            }
        }
        out.extend_from_slice(reply.as_bytes());
        out.push(b'\n');
        close
    }

    fn record_from(entry: &DatasetEntry, distance: u32) -> LocateRecord {
        LocateRecord {
            hit: true,
            prefix: entry.prefix,
            lat_bits: entry.location.lat().to_bits(),
            lon_bits: entry.location.lon().to_bits(),
            method: method_tag(&entry.evidence),
            distance,
            confidence_bits: entry.evidence.confidence().to_bits(),
        }
    }

    /// One binary-protocol answer record, through the cache. Both hit
    /// and miss records are pure functions of the queried `/24`, so
    /// both are cacheable.
    fn locate_record(&self, ip: geo_model::ip::Ipv4, nearest: bool) -> LocateRecord {
        let kind = if nearest {
            CacheKind::BinNearest
        } else {
            CacheKind::BinLocate
        };
        let prefix = ip.prefix24().0;
        if let Some(CacheValue::Record(rec)) = self.cache.get(kind, prefix) {
            self.stats.count(rec.hit);
            return rec;
        }
        let rec = if nearest {
            match self.store.lookup_nearest(ip) {
                Some((entry, dist)) => Self::record_from(entry, dist),
                None => LocateRecord::miss(ip),
            }
        } else {
            match self.store.lookup(ip) {
                Some(entry) => Self::record_from(entry, 0),
                None => LocateRecord::miss(ip),
            }
        };
        self.stats.count(rec.hit);
        self.cache.put(kind, prefix, CacheValue::Record(rec));
        rec
    }

    /// Answers one decoded binary request straight into the output
    /// buffer, records streaming in query order.
    fn respond_frame_into(&self, req: &Request, out: &mut Vec<u8>) {
        match req {
            Request::Locate(ips) | Request::Nearest(ips) => {
                let nearest = matches!(req, Request::Nearest(_));
                let opcode = if nearest {
                    Opcode::Nearest
                } else {
                    Opcode::Locate
                };
                let w = ResponseWriter::begin(out, opcode);
                for &ip in ips {
                    let rec = self.locate_record(ip, nearest);
                    w.push_record(out, &rec);
                }
                w.finish(out);
            }
            Request::Stats => {
                let s = self.stats.snapshot();
                let w = ResponseWriter::begin(out, Opcode::Stats);
                w.push_stats(
                    out,
                    &StatsRecord {
                        entries: self.store.len() as u64,
                        hits: s.hits,
                        misses: s.misses,
                        connections: s.connections,
                    },
                );
                w.finish(out);
            }
        }
    }
}

/// Which protocol a connection speaks; decided by its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Undecided,
    Line,
    Binary,
}

/// One registered connection's state.
struct Conn {
    stream: TcpStream,
    mode: Mode,
    /// Bytes read but not yet parsed; `parsed` marks the frame/line
    /// boundary already consumed.
    inbuf: Vec<u8>,
    parsed: usize,
    /// Bytes queued for the client; `sent` marks how far the socket got.
    out: Vec<u8>,
    sent: usize,
    /// Flush what is queued, then close (QUIT, EOF, protocol error).
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            mode: Mode::Undecided,
            inbuf: Vec::new(),
            parsed: 0,
            out: Vec::new(),
            sent: 0,
            closing: false,
        }
    }

    fn backlog(&self) -> usize {
        self.out.len() - self.sent
    }

    /// Drops already-parsed input; called once parsing stalls so the
    /// buffer never grows beyond one partial frame/line.
    fn compact(&mut self) {
        if self.parsed == self.inbuf.len() {
            self.inbuf.clear();
            self.parsed = 0;
        } else if self.parsed > READ_CHUNK {
            self.inbuf.drain(..self.parsed);
            self.parsed = 0;
        }
    }
}

/// Outcome of one connection sweep step.
enum Sweep {
    Keep,
    Drop,
}

/// Reads, parses, answers, and flushes one connection. Nonblocking
/// throughout: every `WouldBlock` just ends that phase until the next
/// sweep.
// geo-lint: allow(R1T, reason = "cursor slices hold `parsed <= inbuf.len()`, `sent <= out.len()`, and `n <= scratch.len()` from read()")
fn sweep_conn(
    serving: &Serving,
    conn: &mut Conn,
    scratch: &mut [u8],
    progress: &mut bool,
) -> Sweep {
    // Read phase — skipped while the client is not draining its answers.
    while !conn.closing && conn.backlog() < WRITE_HIGH_WATER && conn.inbuf.len() < MAX_INBUF {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.closing = true;
                break;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&scratch[..n]);
                *progress = true;
                if n < scratch.len() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Sweep::Drop,
        }
    }

    // Parse phase — consume every complete frame/line now buffered.
    if conn.mode == Mode::Undecided {
        if let Some(&first) = conn.inbuf.first() {
            conn.mode = if first == proto::REQ_MAGIC {
                Mode::Binary
            } else {
                Mode::Line
            };
        }
    }
    match conn.mode {
        Mode::Undecided => {}
        Mode::Binary => loop {
            match try_decode_request(&conn.inbuf[conn.parsed..]) {
                Ok(proto::Decoded::Frame(req, used)) => {
                    serving.respond_frame_into(&req, &mut conn.out);
                    conn.parsed += used;
                    *progress = true;
                }
                Ok(proto::Decoded::NeedMore) => {
                    if conn.inbuf.len() - conn.parsed >= MAX_INBUF {
                        // A frame can never legitimately be this large;
                        // the budget check makes this unreachable, but
                        // keep the guard so a bug cannot balloon memory.
                        encode_error(&mut conn.out, Opcode::Locate, "frame exceeds input budget");
                        conn.closing = true;
                    }
                    break;
                }
                Err(e) => {
                    encode_error(&mut conn.out, Opcode::Locate, &e.to_string());
                    conn.closing = true;
                    *progress = true;
                    break;
                }
            }
        },
        Mode::Line => loop {
            let pending = &conn.inbuf[conn.parsed..];
            let Some(nl) = pending.iter().position(|&b| b == b'\n') else {
                if pending.len() > MAX_LINE {
                    conn.out.extend_from_slice(b"ERR line exceeds 64 KiB\n");
                    conn.closing = true;
                }
                break;
            };
            let line = String::from_utf8_lossy(&pending[..nl]);
            let close = serving.respond_line_into(line.trim(), &mut conn.out);
            conn.parsed += nl + 1;
            *progress = true;
            if close {
                conn.closing = true;
                break;
            }
        },
    }
    conn.compact();

    // Write phase — flush as much of the backlog as the socket takes.
    while conn.sent < conn.out.len() {
        match conn.stream.write(&conn.out[conn.sent..]) {
            Ok(0) => return Sweep::Drop,
            Ok(n) => {
                conn.sent += n;
                *progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Sweep::Drop,
        }
    }
    if conn.sent == conn.out.len() {
        conn.out.clear();
        conn.sent = 0;
        if conn.closing {
            return Sweep::Drop;
        }
    }
    Sweep::Keep
}

/// One worker's event loop: accept a bounded burst, sweep every
/// registered connection, pace with the poller's idle backoff, exit on
/// the wake token.
// geo-lint: serve-entry
fn worker_loop(listener: &TcpListener, serving: &Serving, mut poller: Poller) {
    let mut registry: Registry<Conn> = Registry::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    loop {
        if poller.wake_requested() {
            break;
        }
        let mut progress = false;
        for _ in 0..ACCEPT_BURST {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    serving.stats.connections.fetch_add(1, Ordering::Relaxed);
                    registry.register(Conn::new(stream), Interest::READ);
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        for token in registry.tokens() {
            let Some((conn, _)) = registry.get_mut(token) else {
                continue;
            };
            if let Sweep::Drop = sweep_conn(serving, conn, &mut scratch, &mut progress) {
                registry.deregister(token);
            }
        }
        if progress {
            poller.note_progress();
        } else {
            poller.idle_wait();
        }
    }
}

/// A running query server; dropping the handle does **not** stop it —
/// call [`QueryServer::shutdown`] (or [`QueryServer::wait`] to serve
/// until the process dies).
pub struct QueryServer {
    addr: SocketAddr,
    stats: Arc<ServeStats>,
    cache: Arc<HotCache>,
    waker: Waker,
    workers: Vec<JoinHandle<()>>,
}

impl QueryServer {
    /// Binds `127.0.0.1:port` (`port` 0 lets the OS choose) and starts
    /// the worker pool, sized from `IPGEO_THREADS` (0/unset: all cores).
    pub fn spawn(store: Arc<DatasetStore>, port: u16) -> io::Result<QueryServer> {
        let workers = geo_model::runtime::threads();
        QueryServer::spawn_with_workers(store, port, workers)
    }

    /// As [`spawn`](QueryServer::spawn) with an explicit worker count —
    /// the equivalence tests' hook for comparing 1-vs-N worker response
    /// streams without touching the environment.
    // geo-lint: worker-bootstrap
    pub fn spawn_with_workers(
        store: Arc<DatasetStore>,
        port: u16,
        workers: usize,
    ) -> io::Result<QueryServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let serving = Arc::new(Serving {
            store,
            stats: Arc::new(ServeStats::new()),
            cache: Arc::new(HotCache::new()),
        });
        let root = Poller::new();
        let waker = root.waker();
        let workers = (0..workers.max(1))
            .map(|_| {
                let listener = listener.try_clone()?;
                let serving = Arc::clone(&serving);
                let poller = Poller::sharing(&root);
                Ok(std::thread::spawn(move || {
                    worker_loop(&listener, &serving, poller);
                }))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(QueryServer {
            addr,
            stats: Arc::clone(&serving.stats),
            cache: Arc::clone(&serving.cache),
            waker,
            workers,
        })
    }

    /// The bound address (real port even when spawned with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Hot-prefix cache traffic (hits/misses/evictions) since spawn.
    pub fn cache_stats(&self) -> crate::cache::CacheCounters {
        self.cache.counters()
    }

    /// Graceful shutdown: fires the wake token and joins every worker.
    /// Each worker observes the token at the top of its next sweep, so
    /// teardown needs no wake-up connection and no read timeouts.
    pub fn shutdown(mut self) {
        self.waker.wake();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Blocks until the workers exit — the `ipgeo serve` foreground
    /// mode, ended only by killing the process.
    pub fn wait(mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One-shot client: sends a single protocol line to a running server and
/// returns the one-line reply. This is the `ipgeo query --server` path and
/// the integration tests' client primitive.
pub fn query_one(addr: &str, command: &str) -> io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    writer.write_all(format!("{command}\n").as_bytes())?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    // geo-lint: allow(R4, reason = "blocking read in the one-shot client primitive, not the serving path")
    reader.read_line(&mut reply)?;
    Ok(reply.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{BinaryClient, Response};
    use geo_model::ip::{Ipv4, Prefix24};
    use geo_model::point::GeoPoint;
    use ipgeo::publish::{DatasetEntry, Evidence};

    fn store() -> DatasetStore {
        let entries = vec![
            DatasetEntry {
                prefix: Prefix24(0x0A0A0A),
                location: GeoPoint::new(48.85, 2.35),
                evidence: Evidence::DnsHint {
                    hostname: "par1.example.net".into(),
                },
            },
            DatasetEntry {
                prefix: Prefix24(0x0A0A10),
                location: GeoPoint::new(-33.9, 151.2),
                evidence: Evidence::Whois,
            },
        ];
        DatasetStore::from_entries(&entries, 3, 1)
    }

    #[test]
    fn protocol_lines() {
        let s = store();
        let stats = ServeStats::new();
        let (hit, close) = respond(&s, &stats, "LOCATE 10.10.10.200");
        assert!(!close);
        assert_eq!(
            hit,
            "OK 10.10.10.0/24,48.8500,2.3500,dns-hint,0.90,hostname=par1.example.net"
        );
        let (miss, _) = respond(&s, &stats, "LOCATE 9.9.9.9");
        assert_eq!(miss, "MISS 9.9.9.9");
        let (near, _) = respond(&s, &stats, "NEAREST 10.10.11.1");
        assert!(near.starts_with("OK 10.10.10.0/24"), "{near}");
        assert!(near.ends_with("distance=1"), "{near}");
        let (stats_line, _) = respond(&s, &stats, "STATS");
        assert!(
            stats_line.starts_with("OK entries=2 hits=2 misses=1"),
            "{stats_line}"
        );
        assert_eq!(respond(&s, &stats, "QUIT"), ("BYE".into(), true));
        assert!(respond(&s, &stats, "LOCATE not-an-ip").0.starts_with("ERR"));
        assert!(respond(&s, &stats, "TELEPORT 1.2.3.4").0.starts_with("ERR"));
        assert!(respond(&s, &stats, "").0.starts_with("ERR"));
    }

    #[test]
    fn cached_line_answers_are_byte_identical() {
        let serving = Serving {
            store: Arc::new(store()),
            stats: Arc::new(ServeStats::new()),
            cache: Arc::new(HotCache::new()),
        };
        let mut cold = Vec::new();
        let close = serving.respond_line_into("LOCATE 10.10.10.200", &mut cold);
        assert!(!close);
        let mut warm = Vec::new();
        serving.respond_line_into("LOCATE 10.10.10.200", &mut warm);
        assert_eq!(cold, warm);
        assert_eq!(serving.stats.snapshot().hits, 2);
        // Misses bypass the cache (the reply embeds the exact ip).
        let mut miss = Vec::new();
        serving.respond_line_into("LOCATE 9.9.9.9", &mut miss);
        assert_eq!(miss, b"MISS 9.9.9.9\n");
        assert_eq!(serving.cache.counters().hits, 1);
    }

    #[test]
    fn serves_over_a_real_socket() {
        let server = QueryServer::spawn(Arc::new(store()), 0).unwrap();
        let addr = server.addr().to_string();
        let reply = query_one(&addr, "LOCATE 10.10.10.1").unwrap();
        assert!(reply.starts_with("OK 10.10.10.0/24"), "{reply}");
        let reply = query_one(&addr, "STATS").unwrap();
        assert!(reply.contains("hits=1"), "{reply}");
        let stats = server.stats();
        assert_eq!(stats.hits, 1);
        assert!(stats.connections >= 2);
        server.shutdown();
        // The port is released after shutdown: a fresh connect must fail
        // or be refused service; either way, no reply arrives.
        assert!(query_one(&addr, "LOCATE 10.10.10.1").is_err());
    }

    #[test]
    fn serves_the_binary_protocol_on_the_same_port() {
        let server = QueryServer::spawn(Arc::new(store()), 0).unwrap();
        let addr = server.addr().to_string();
        let mut client = BinaryClient::connect(&addr).unwrap();
        let ips = vec![Prefix24(0x0A0A0A).host(1), Ipv4(0x0909_0909)];
        let Response::Records { opcode, records } = client.query(Opcode::Locate, &ips).unwrap()
        else {
            panic!("expected records");
        };
        assert_eq!(opcode, Opcode::Locate);
        assert_eq!(records.len(), 2);
        assert!(records[0].hit);
        assert_eq!(records[0].prefix, Prefix24(0x0A0A0A));
        assert_eq!(records[0].lat(), 48.85);
        assert!(!records[1].hit);

        let Response::Records { records, .. } = client
            .query(Opcode::Nearest, &[Prefix24(0x0A0A0B).host(9)])
            .unwrap()
        else {
            panic!("expected records");
        };
        assert_eq!(
            (records[0].prefix, records[0].distance),
            (Prefix24(0x0A0A0A), 1)
        );

        let Response::Stats(s) = client.query(Opcode::Stats, &[]).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(s.entries, 2);
        assert_eq!(s.hits + s.misses, 3);

        // A line-protocol client still works on the very same port.
        let reply = query_one(&addr, "LOCATE 10.10.10.1").unwrap();
        assert!(reply.starts_with("OK"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn malformed_binary_frame_gets_a_typed_error_then_close() {
        let server = QueryServer::spawn(Arc::new(store()), 0).unwrap();
        let addr = server.addr().to_string();
        let mut stream = TcpStream::connect(&addr).unwrap();
        // Valid header shape, hostile length field.
        let mut frame = vec![proto::REQ_MAGIC, proto::PROTO_VERSION, 1, 0];
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        stream.write_all(&frame).unwrap();
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).unwrap();
        let proto::Decoded::Frame(resp, _) = proto::try_decode_response(&reply).unwrap() else {
            panic!("expected a complete error frame");
        };
        assert!(matches!(resp, Response::Error(msg) if msg.contains("budget")));
        server.shutdown();
    }

    #[test]
    // Wall-clock promptness check, not simulation state.
    #[allow(clippy::disallowed_methods)]
    fn shutdown_is_prompt_with_an_idle_connection_parked() {
        let server = QueryServer::spawn_with_workers(Arc::new(store()), 0, 2).unwrap();
        let addr = server.addr().to_string();
        // Park a connection that never sends anything: the wake token
        // must still tear the server down without a dummy connection.
        let _idle = TcpStream::connect(&addr).unwrap();
        let started = std::time::Instant::now();
        server.shutdown();
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "wake-token shutdown took {:?}",
            started.elapsed()
        );
    }
}
