//! The `.igds` (Internet Geolocation DataSet) binary snapshot format.
//!
//! The paper's deliverable is a *publishable* dataset; publishing needs a
//! persistent artifact, not an in-memory `Vec`. An `.igds` file is a
//! versioned, checksummed, column-oriented snapshot of
//! [`ipgeo::publish::DatasetEntry`] records:
//!
//! ```text
//! header (40 bytes)
//!   magic        "IGDS"          4 bytes
//!   version      u16 LE          format revision (currently 2)
//!   reserved     u16 LE          0
//!   world_seed   u64 LE          seed of the world that produced it
//!   nonce        u64 LE          measurement nonce of the campaign
//!   entry_count  u32 LE          n
//!   evidence_len u32 LE          byte length of the evidence table
//!   checksum     u64 LE          FNV-1a over every payload byte
//! payload (columns, in order)
//!   prefixes     n × u32 LE      sorted strictly ascending (/24 upper bits)
//!   lat          n × u64 LE      f64 bit patterns
//!   lon          n × u64 LE      f64 bit patterns
//!   method       n × u8          evidence tag (0..=4)
//!   ev_offset    n × u32 LE      byte offset into the evidence table
//!   evidence     evidence_len bytes (per-tag records, see below)
//! ```
//!
//! Evidence records, addressed by `ev_offset` and interpreted per tag:
//! geofeed (0) and WHOIS (3) carry no bytes; a DNS hint (1) is
//! `u16 LE hostname-length` followed by UTF-8 bytes; latency (2) is
//! `u32 LE vps`, `u64 LE best-RTT f64 bits`, `u32 LE best-VP host id`;
//! fused (4) is `u64 LE confidence f64 bits`, `u8 source mask`,
//! `u32 LE vps`, `u64 LE best-RTT f64 bits`, `u32 LE best-VP host id`,
//! then `u16 LE hostname-length` (0 when no hint survived) and UTF-8
//! bytes. Version 2 added the fused tag; version-1 files are rejected.
//!
//! **Determinism.** [`encode`] sorts entries by prefix (stable, keeping the
//! first record of a duplicated prefix) and writes columns in a fixed
//! order with fixed-width little-endian scalars — no timestamps, pointers,
//! or map iteration order anywhere — so the same logical dataset yields a
//! byte-identical file on every machine. Floats are persisted as bit
//! patterns, never text, so a save→load round trip is exact.

use geo_model::ip::Prefix24;
use geo_model::point::GeoPoint;
use geo_model::units::Ms;
use ipgeo::publish::{DatasetEntry, Evidence};
use std::fmt;
use std::path::Path;
use world_sim::ids::HostId;

/// The four magic bytes opening every `.igds` file.
pub const MAGIC: [u8; 4] = *b"IGDS";

/// Current format revision (2: fused evidence tag).
pub const VERSION: u16 = 2;

/// Fixed byte length of the header.
pub const HEADER_LEN: usize = 40;

/// Everything that can go wrong reading or writing a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// Underlying filesystem failure.
    Io(String),
    /// The file does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The file's format revision is not supported.
    BadVersion(u16),
    /// The buffer is shorter than its header claims.
    Truncated {
        /// Bytes the header implies.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The payload does not hash to the stored checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum of the payload as read.
        computed: u64,
    },
    /// The prefix column is not strictly ascending at this index.
    UnsortedPrefixes(usize),
    /// A prefix uses more than 24 bits.
    BadPrefix(u32),
    /// An unknown evidence tag.
    BadMethodTag(u8),
    /// An evidence record is out of range or malformed.
    BadEvidence(String),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "i/o error: {e}"),
            FormatError::BadMagic(m) => write!(f, "not an .igds file (magic {m:02x?})"),
            FormatError::BadVersion(v) => {
                write!(f, "unsupported .igds version {v} (supported: {VERSION})")
            }
            FormatError::Truncated { need, have } => {
                write!(f, "truncated .igds file: need {need} bytes, have {have}")
            }
            FormatError::ChecksumMismatch { stored, computed } => write!(
                f,
                "corrupt .igds payload: checksum {computed:016x}, header says {stored:016x}"
            ),
            FormatError::UnsortedPrefixes(i) => {
                write!(f, "prefix column not strictly ascending at index {i}")
            }
            FormatError::BadPrefix(p) => write!(f, "prefix {p:#x} exceeds 24 bits"),
            FormatError::BadMethodTag(t) => write!(f, "unknown evidence tag {t}"),
            FormatError::BadEvidence(e) => write!(f, "malformed evidence record: {e}"),
        }
    }
}

impl std::error::Error for FormatError {}

/// The decoded fixed-size header of a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Format revision.
    pub version: u16,
    /// Seed of the world the dataset was measured in.
    pub world_seed: u64,
    /// Measurement nonce of the producing campaign.
    pub nonce: u64,
    /// Number of entries.
    pub entries: u32,
    /// FNV-1a checksum of the payload.
    pub checksum: u64,
}

/// FNV-1a 64-bit hash — dependency-free integrity check for the payload
/// (also reused by the binary wire protocol's frame checksums).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The on-disk evidence tag (0..=3) — also the `method` byte carried by
/// binary-protocol location records, so wire and disk agree.
pub(crate) fn method_tag(e: &Evidence) -> u8 {
    match e {
        Evidence::Geofeed => 0,
        Evidence::DnsHint { .. } => 1,
        Evidence::Latency { .. } => 2,
        Evidence::Whois => 3,
        Evidence::Fused { .. } => 4,
    }
}

/// Serializes the dataset to `.igds` bytes: deterministic for a given
/// logical dataset (entries are sorted by prefix; a duplicated prefix
/// keeps its first record in input order).
pub fn encode(entries: &[DatasetEntry], world_seed: u64, nonce: u64) -> Vec<u8> {
    let mut sorted: Vec<&DatasetEntry> = entries.iter().collect();
    sorted.sort_by_key(|e| e.prefix);
    sorted.dedup_by_key(|e| e.prefix);
    let n = sorted.len();

    let mut prefixes = Vec::with_capacity(n * 4);
    let mut lats = Vec::with_capacity(n * 8);
    let mut lons = Vec::with_capacity(n * 8);
    let mut tags = Vec::with_capacity(n);
    let mut offsets = Vec::with_capacity(n * 4);
    let mut evidence: Vec<u8> = Vec::new();

    for e in &sorted {
        prefixes.extend_from_slice(&e.prefix.0.to_le_bytes());
        lats.extend_from_slice(&e.location.lat().to_bits().to_le_bytes());
        lons.extend_from_slice(&e.location.lon().to_bits().to_le_bytes());
        tags.push(method_tag(&e.evidence));
        offsets.extend_from_slice(&(evidence.len() as u32).to_le_bytes());
        match &e.evidence {
            Evidence::Geofeed | Evidence::Whois => {}
            Evidence::DnsHint { hostname } => {
                evidence.extend_from_slice(&(hostname.len() as u16).to_le_bytes());
                evidence.extend_from_slice(hostname.as_bytes());
            }
            Evidence::Latency {
                vps,
                best_rtt,
                best_vp,
            } => {
                evidence.extend_from_slice(&(*vps as u32).to_le_bytes());
                evidence.extend_from_slice(&best_rtt.value().to_bits().to_le_bytes());
                evidence.extend_from_slice(&best_vp.0.to_le_bytes());
            }
            Evidence::Fused {
                confidence,
                sources,
                vps,
                best_rtt,
                best_vp,
                hostname,
            } => {
                evidence.extend_from_slice(&confidence.to_bits().to_le_bytes());
                evidence.push(*sources);
                evidence.extend_from_slice(&(*vps as u32).to_le_bytes());
                evidence.extend_from_slice(&best_rtt.value().to_bits().to_le_bytes());
                evidence.extend_from_slice(&best_vp.0.to_le_bytes());
                let name = hostname.as_deref().unwrap_or("");
                evidence.extend_from_slice(&(name.len() as u16).to_le_bytes());
                evidence.extend_from_slice(name.as_bytes());
            }
        }
    }

    let payload_len = prefixes.len() + lats.len() + lons.len() + tags.len() + offsets.len();
    let mut out = Vec::with_capacity(HEADER_LEN + payload_len + evidence.len());
    let mut payload = Vec::with_capacity(payload_len + evidence.len());
    payload.extend_from_slice(&prefixes);
    payload.extend_from_slice(&lats);
    payload.extend_from_slice(&lons);
    payload.extend_from_slice(&tags);
    payload.extend_from_slice(&offsets);
    payload.extend_from_slice(&evidence);

    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&world_seed.to_le_bytes());
    out.extend_from_slice(&nonce.to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&(evidence.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Little-endian readers over a validated range.
// geo-lint: allow(R1T, reason = "length-checked by every caller: decode verifies the buffer covers each fixed-offset read before calling")
fn read_u16(b: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([b[at], b[at + 1]])
}
// geo-lint: allow(R1T, reason = "length-checked by every caller: decode verifies the buffer covers each fixed-offset read before calling")
fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}
// geo-lint: allow(R1T, reason = "length-checked by every caller: decode verifies the buffer covers each fixed-offset read before calling")
fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes([
        b[at],
        b[at + 1],
        b[at + 2],
        b[at + 3],
        b[at + 4],
        b[at + 5],
        b[at + 6],
        b[at + 7],
    ])
}

/// Parses and fully validates `.igds` bytes: magic, version, length,
/// checksum, prefix ordering, evidence tags and record bounds.
// geo-lint: allow(R1T, reason = "every index is guarded: the exact byte length is checked up front and each evidence read is bounds-tested before slicing")
pub fn decode(bytes: &[u8]) -> Result<(Header, Vec<DatasetEntry>), FormatError> {
    if bytes.len() < HEADER_LEN {
        return Err(FormatError::Truncated {
            need: HEADER_LEN,
            have: bytes.len(),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(FormatError::BadMagic([
            bytes[0], bytes[1], bytes[2], bytes[3],
        ]));
    }
    let version = read_u16(bytes, 4);
    if version != VERSION {
        return Err(FormatError::BadVersion(version));
    }
    let header = Header {
        version,
        world_seed: read_u64(bytes, 8),
        nonce: read_u64(bytes, 16),
        entries: read_u32(bytes, 24),
        checksum: read_u64(bytes, 32),
    };
    let n = header.entries as usize;
    let evidence_len = read_u32(bytes, 28) as usize;
    // Checked arithmetic: a hostile header can claim counts whose implied
    // size overflows usize; that must surface as a typed error, not UB or
    // a debug-build panic.
    let need = n
        .checked_mul(4 + 8 + 8 + 1 + 4)
        .and_then(|cols| cols.checked_add(HEADER_LEN))
        .and_then(|total| total.checked_add(evidence_len))
        .ok_or(FormatError::Truncated {
            need: usize::MAX,
            have: bytes.len(),
        })?;
    if bytes.len() != need {
        return Err(FormatError::Truncated {
            need,
            have: bytes.len(),
        });
    }
    let payload = &bytes[HEADER_LEN..];
    let computed = fnv1a(payload);
    if computed != header.checksum {
        return Err(FormatError::ChecksumMismatch {
            stored: header.checksum,
            computed,
        });
    }

    let (pfx_at, lat_at, lon_at, tag_at, off_at) = (0, n * 4, n * 12, n * 20, n * 21);
    let ev = &payload[n * 25..];

    let mut entries = Vec::with_capacity(n);
    let mut prev: Option<u32> = None;
    for i in 0..n {
        let raw = read_u32(payload, pfx_at + i * 4);
        if raw > 0x00FF_FFFF {
            return Err(FormatError::BadPrefix(raw));
        }
        if prev.is_some_and(|p| p >= raw) {
            return Err(FormatError::UnsortedPrefixes(i));
        }
        prev = Some(raw);
        let lat = f64::from_bits(read_u64(payload, lat_at + i * 8));
        let lon = f64::from_bits(read_u64(payload, lon_at + i * 8));
        let tag = payload[tag_at + i];
        let off = read_u32(payload, off_at + i * 4) as usize;
        let evidence = match tag {
            0 => Evidence::Geofeed,
            3 => Evidence::Whois,
            1 => {
                if off + 2 > ev.len() {
                    return Err(FormatError::BadEvidence(format!(
                        "dns-hint record at {off} past table end {}",
                        ev.len()
                    )));
                }
                let len = read_u16(ev, off) as usize;
                let bytes = ev.get(off + 2..off + 2 + len).ok_or_else(|| {
                    FormatError::BadEvidence(format!("hostname of {len} bytes at {off}"))
                })?;
                let hostname = std::str::from_utf8(bytes)
                    .map_err(|e| FormatError::BadEvidence(format!("hostname utf-8: {e}")))?
                    .to_string();
                Evidence::DnsHint { hostname }
            }
            2 => {
                if off + 16 > ev.len() {
                    return Err(FormatError::BadEvidence(format!(
                        "latency record at {off} past table end {}",
                        ev.len()
                    )));
                }
                Evidence::Latency {
                    vps: read_u32(ev, off) as usize,
                    best_rtt: Ms(f64::from_bits(read_u64(ev, off + 4))),
                    best_vp: HostId(read_u32(ev, off + 12)),
                }
            }
            4 => {
                // Fixed part: confidence (8) + sources (1) + vps (4) +
                // best RTT (8) + best VP (4) + hostname length (2).
                if off + 27 > ev.len() {
                    return Err(FormatError::BadEvidence(format!(
                        "fused record at {off} past table end {}",
                        ev.len()
                    )));
                }
                let len = read_u16(ev, off + 25) as usize;
                let name_bytes = ev.get(off + 27..off + 27 + len).ok_or_else(|| {
                    FormatError::BadEvidence(format!("fused hostname of {len} bytes at {off}"))
                })?;
                let hostname = if len == 0 {
                    None
                } else {
                    Some(
                        std::str::from_utf8(name_bytes)
                            .map_err(|e| {
                                FormatError::BadEvidence(format!("fused hostname utf-8: {e}"))
                            })?
                            .to_string(),
                    )
                };
                Evidence::Fused {
                    confidence: f64::from_bits(read_u64(ev, off)),
                    sources: ev[off + 8],
                    vps: read_u32(ev, off + 9) as usize,
                    best_rtt: Ms(f64::from_bits(read_u64(ev, off + 13))),
                    best_vp: HostId(read_u32(ev, off + 21)),
                    hostname,
                }
            }
            other => return Err(FormatError::BadMethodTag(other)),
        };
        entries.push(DatasetEntry {
            prefix: Prefix24(raw),
            location: GeoPoint::new(lat, lon),
            evidence,
        });
    }
    Ok((header, entries))
}

/// Writes the dataset to `path`, returning the header it stored.
pub fn save(
    path: impl AsRef<Path>,
    entries: &[DatasetEntry],
    world_seed: u64,
    nonce: u64,
) -> Result<Header, FormatError> {
    let bytes = encode(entries, world_seed, nonce);
    std::fs::write(path.as_ref(), &bytes).map_err(|e| FormatError::Io(e.to_string()))?;
    let (header, _) = decode(&bytes)?;
    Ok(header)
}

/// Reads and validates a snapshot from `path`.
pub fn load(path: impl AsRef<Path>) -> Result<(Header, Vec<DatasetEntry>), FormatError> {
    let bytes = std::fs::read(path.as_ref()).map_err(|e| FormatError::Io(e.to_string()))?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<DatasetEntry> {
        vec![
            DatasetEntry {
                prefix: Prefix24(0x000200),
                location: GeoPoint::new(10.5, -3.25),
                evidence: Evidence::DnsHint {
                    hostname: "edge1.lyon.as7.net".into(),
                },
            },
            DatasetEntry {
                prefix: Prefix24(0x000100),
                location: GeoPoint::new(-45.0, 170.0),
                evidence: Evidence::Latency {
                    vps: 17,
                    best_rtt: Ms(12.625),
                    best_vp: HostId(42),
                },
            },
            DatasetEntry {
                prefix: Prefix24(0x000300),
                location: GeoPoint::new(51.0, 0.0),
                evidence: Evidence::Geofeed,
            },
            DatasetEntry {
                prefix: Prefix24(0x000400),
                location: GeoPoint::new(0.0, 0.0),
                evidence: Evidence::Whois,
            },
            DatasetEntry {
                prefix: Prefix24(0x000500),
                location: GeoPoint::new(48.85, 2.35),
                evidence: Evidence::Fused {
                    confidence: 0.97,
                    sources: 1 | 2 | 4,
                    vps: 11,
                    best_rtt: Ms(3.5),
                    best_vp: HostId(9),
                    hostname: Some("core2.par.as7.example.net".into()),
                },
            },
            DatasetEntry {
                prefix: Prefix24(0x000600),
                location: GeoPoint::new(-12.0, 30.0),
                evidence: Evidence::Fused {
                    confidence: 0.70,
                    sources: 1,
                    vps: 6,
                    best_rtt: Ms(21.0),
                    best_vp: HostId(3),
                    hostname: None,
                },
            },
        ]
    }

    #[test]
    fn round_trips_and_sorts() {
        let bytes = encode(&sample(), 99, 7);
        let (header, entries) = decode(&bytes).unwrap();
        assert_eq!(header.version, VERSION);
        assert_eq!(header.world_seed, 99);
        assert_eq!(header.nonce, 7);
        assert_eq!(header.entries, 6);
        let mut expected = sample();
        expected.sort_by_key(|e| e.prefix);
        assert_eq!(entries, expected);
    }

    #[test]
    fn encoding_is_input_order_independent() {
        let mut shuffled = sample();
        shuffled.reverse();
        assert_eq!(encode(&sample(), 1, 1), encode(&shuffled, 1, 1));
    }

    #[test]
    fn duplicate_prefixes_keep_first_record() {
        let mut dup = sample();
        dup.push(DatasetEntry {
            prefix: Prefix24(0x000100),
            location: GeoPoint::new(1.0, 1.0),
            evidence: Evidence::Whois,
        });
        let (_, entries) = decode(&encode(&dup, 1, 1)).unwrap();
        assert_eq!(entries.len(), 6);
        assert_eq!(
            entries[0].evidence,
            Evidence::Latency {
                vps: 17,
                best_rtt: Ms(12.625),
                best_vp: HostId(42),
            }
        );
    }

    #[test]
    fn rejects_corruption() {
        let good = encode(&sample(), 1, 1);
        assert!(matches!(
            decode(&good[..10]),
            Err(FormatError::Truncated { .. })
        ));

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(decode(&bad_magic), Err(FormatError::BadMagic(_))));

        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert!(matches!(
            decode(&bad_version),
            Err(FormatError::BadVersion(9))
        ));

        let mut flipped = good.clone();
        *flipped.last_mut().unwrap() ^= 0x40;
        assert!(matches!(
            decode(&flipped),
            Err(FormatError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_at_every_length_is_a_typed_error() {
        let good = encode(&sample(), 1, 1);
        for len in 0..good.len() {
            assert!(
                decode(&good[..len]).is_err(),
                "decode of a {len}-byte prefix must fail"
            );
        }
    }

    #[test]
    fn single_bit_flips_never_panic() {
        let good = encode(&sample(), 1, 1);
        for i in 0..good.len() {
            for bit in 0..8 {
                let mut mutated = good.clone();
                mutated[i] ^= 1 << bit;
                // Any outcome must be a typed Result — flipping a header
                // count, a tag, or an offset must never panic the decoder.
                let _ = decode(&mutated);
            }
        }
    }

    #[test]
    fn hostile_header_counts_are_a_typed_error() {
        // A header claiming u32::MAX entries and a u32::MAX evidence table:
        // the implied size must not overflow into a bogus bounds check.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(FormatError::Truncated { .. })));
    }

    #[test]
    fn empty_dataset_round_trips() {
        let (header, entries) = decode(&encode(&[], 5, 5)).unwrap();
        assert_eq!(header.entries, 0);
        assert!(entries.is_empty());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("igds-format-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.igds");
        let header = save(&path, &sample(), 77, 3).unwrap();
        let (loaded_header, entries) = load(&path).unwrap();
        assert_eq!(header, loaded_header);
        assert_eq!(entries.len(), 6);
        std::fs::remove_file(&path).unwrap();
    }
}
