//! # geo-serve
//!
//! The consumption layer the paper's deliverable implies: once
//! [`ipgeo::publish`] has assembled the accurate/complete/explainable
//! dataset, this crate makes it *publishable and servable* —
//!
//! - [`format`] — the `.igds` versioned binary snapshot: checksummed,
//!   column-oriented, byte-deterministic for a given world seed;
//! - [`store`] — [`DatasetStore`], an indexed read-only view answering
//!   exact-`/24` and nearest-covering-prefix lookups by binary search,
//!   with batch lookups fanned out over the workspace's deterministic
//!   thread pool;
//! - [`server`] — [`QueryServer`], a readiness-driven TCP server: a
//!   fixed worker pool (sized from `IPGEO_THREADS`) of event loops over
//!   nonblocking sockets, each connection speaking either the one-line
//!   text protocol (`LOCATE`/`NEAREST`/`STATS`/`RELOAD`/`QUIT`) or the
//!   binary pipelined protocol, with atomic hit/miss/eviction counters,
//!   connection caps with `BUSY` shedding, live generation-tagged
//!   snapshot reload, and wake-token or graceful-drain shutdown;
//! - [`lifecycle`] — the per-connection deadline state machine
//!   ([`ServeLimits`], [`ServeClock`], typed [`Eviction`]s) that turns
//!   idle, slow-loris, and slow-reader connections into bounded,
//!   counted evictions instead of leaked resources;
//! - [`chaos`] — seeded socket-level fault injection (split writes,
//!   stalls, mid-frame aborts, checksum corruption, slow-loris) whose
//!   schedule is a pure function of `(seed, domain, connection)`,
//!   plus the harness proving clean clients read bit-identical bytes
//!   while chaos clients attack;
//! - [`proto`] — the length-prefixed, versioned, checksummed binary
//!   request/response protocol (batched/pipelined LOCATE/NEAREST/STATS
//!   frames) and its blocking [`BinaryClient`];
//! - [`poll`] — the safe-`std` readiness poller the server's workers
//!   run on: slot registry, interest tracking, wake token, adaptive
//!   idle backoff;
//! - [`cache`] — [`HotCache`], the sharded hot-prefix cache layered
//!   over [`DatasetStore`] reads;
//! - [`diff`] — [`DiffReport`], the longitudinal added/removed/moved/
//!   retagged comparison between two snapshots;
//! - [`manifest`] — [`Manifest`], the coverage and (given ground truth)
//!   accuracy summary of one snapshot.
//!
//! Everything is `std`-only: the workspace builds offline, so the wire
//! protocol and the on-disk format are hand-rolled rather than pulled
//! from serde/tokio.

pub mod cache;
pub mod chaos;
pub mod diff;
pub mod format;
pub mod lifecycle;
pub mod manifest;
pub mod poll;
pub mod proto;
pub mod server;
pub mod store;

pub use cache::HotCache;
pub use chaos::{ChaosConfig, ChaosPlan, ChaosReport};
pub use diff::DiffReport;
pub use format::{FormatError, Header};
pub use lifecycle::{ClockHandle, Eviction, ServeClock, ServeLimits};
pub use manifest::Manifest;
pub use proto::{BinaryClient, LocateRecord, Opcode, ProtoError, Request, Response, StatsRecord};
pub use server::{query_one, QueryServer, ServeConfig, StatsSnapshot};
pub use store::{DatasetStore, StoreHandle};
