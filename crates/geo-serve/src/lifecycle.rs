//! Connection lifecycle policy for the query server: the mockable clock,
//! the serve limits, and the per-connection deadline state machine.
//!
//! The event-loop workers already sweep every connection continuously, so
//! deadlines need no timer threads: each sweep reads the clock **once**
//! and hands the tick to every connection's [`Lifecycle`], which answers
//! "should this connection be evicted, and why" as a pure function of
//! `(phase, tick, limits)`. Tests drive a [`ServeClock::manual`] handle
//! instead of the wall clock, which makes every timeout decision — and
//! therefore every eviction counter — deterministic and replayable.
//!
//! The state machine has three phases:
//!
//! - **Idle** — no partial input buffered, no output backlog. Evicted
//!   after [`ServeLimits::idle_timeout_ms`] without any socket traffic.
//! - **Reading** — a partial frame/line is buffered. The phase clock
//!   resets every time a *complete* frame or line is consumed, not on
//!   every byte, so a slow-loris client trickling one byte per sweep
//!   still trips [`ServeLimits::read_timeout_ms`] while a fast
//!   pipelining client never does.
//! - **Writing** — response bytes are queued. The phase clock resets
//!   when the backlog fully drains; a client that stops reading its
//!   answers trips [`ServeLimits::write_timeout_ms`] and is evicted as
//!   a [`Eviction::SlowClient`].
//!
//! [`Eviction`] also names the two non-deadline removals — oversized
//! input ([`Eviction::TooLarge`]) and the drain-shutdown deadline
//! ([`Eviction::Drain`]) — so every forced close in the server is typed
//! and counted under exactly one reason.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Milliseconds since the server's clock started.
pub type Tick = u64;

/// The clock that drives connection deadlines. One read per worker
/// sweep; never consulted per byte.
#[derive(Debug, Clone)]
pub enum ServeClock {
    /// Real elapsed time since server start.
    Wall(Instant),
    /// A test-controlled tick counter; see [`ClockHandle`].
    Manual(Arc<AtomicU64>),
}

impl ServeClock {
    /// The production clock: wall time, millisecond ticks.
    // Connection deadlines are wall-clock serving state, not simulation
    // state; exempt from the workspace timing ban (see clippy.toml).
    #[allow(clippy::disallowed_methods)]
    pub fn wall() -> ServeClock {
        ServeClock::Wall(Instant::now())
    }

    /// A clock that only moves when its [`ClockHandle`] is advanced —
    /// the chaos/eviction tests' hook for making timeouts deterministic.
    pub fn manual() -> (ServeClock, ClockHandle) {
        let ticks = Arc::new(AtomicU64::new(0));
        (
            ServeClock::Manual(Arc::clone(&ticks)),
            ClockHandle { ticks },
        )
    }

    /// Current tick (milliseconds).
    pub fn now(&self) -> Tick {
        match self {
            ServeClock::Wall(started) => started.elapsed().as_millis() as Tick,
            ServeClock::Manual(ticks) => ticks.load(Ordering::Acquire),
        }
    }
}

/// Advances a [`ServeClock::manual`] clock from any thread.
#[derive(Debug, Clone)]
pub struct ClockHandle {
    ticks: Arc<AtomicU64>,
}

impl ClockHandle {
    /// Moves the clock forward by `ms` ticks.
    pub fn advance(&self, ms: u64) {
        self.ticks.fetch_add(ms, Ordering::AcqRel);
    }

    /// The clock's current tick.
    pub fn now(&self) -> Tick {
        self.ticks.load(Ordering::Acquire)
    }
}

/// Caps and deadlines for a running server. Every field has a default
/// sized for the loopback benches; tests shrink them to taste.
#[derive(Debug, Clone, Copy)]
pub struct ServeLimits {
    /// Global cap on established connections; accepts beyond it are
    /// answered `BUSY` and closed (overload sheds instead of stalling).
    pub max_connections: usize,
    /// Per-worker cap on registered connections; a worker at its cap
    /// sheds its own accepts even when the global cap has headroom.
    pub max_per_worker: usize,
    /// Eviction deadline for connections with no traffic at all.
    pub idle_timeout_ms: u64,
    /// Deadline for completing a started frame/line (anti-slow-loris).
    pub read_timeout_ms: u64,
    /// Deadline for draining queued responses (anti-slow-reader).
    pub write_timeout_ms: u64,
    /// How long a drain shutdown waits for in-flight connections before
    /// evicting the stragglers.
    pub drain_grace_ms: u64,
    /// Minimum clock time between accepted `RELOAD` commands. A reload
    /// discards every generation's warm cache and costs a full snapshot
    /// read from disk, so the admin command is rate-limited: a RELOAD
    /// inside the window is refused with `ERR reload: rate-limited`
    /// instead of thrashing the serve path.
    pub reload_min_interval_ms: u64,
}

impl Default for ServeLimits {
    fn default() -> ServeLimits {
        ServeLimits {
            max_connections: 1024,
            max_per_worker: 1024,
            idle_timeout_ms: 60_000,
            read_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
            drain_grace_ms: 2_000,
            reload_min_interval_ms: 1_000,
        }
    }
}

/// What a connection is waiting on, as seen at the end of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnPhase {
    /// No partial input, no queued output.
    Idle,
    /// A partial frame/line is buffered; waiting on the client's bytes.
    Reading,
    /// Responses are queued; waiting on the client to drain them.
    Writing,
}

/// Why the server force-closed a connection. Every reason maps to one
/// monotonic counter surfaced through `STATS` and the stats snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// No traffic for [`ServeLimits::idle_timeout_ms`].
    Idle,
    /// A partial frame/line sat incomplete past the read deadline.
    StalledRead,
    /// The client stopped draining its responses (write deadline).
    SlowClient,
    /// A single line/frame exceeded the shared input budget.
    TooLarge,
    /// Still in flight when the drain-shutdown grace expired.
    Drain,
}

impl Eviction {
    /// Stable lowercase name, used in farewell messages and reports.
    pub fn name(self) -> &'static str {
        match self {
            Eviction::Idle => "idle-timeout",
            Eviction::StalledRead => "stalled-read",
            Eviction::SlowClient => "slow-client",
            Eviction::TooLarge => "too-large",
            Eviction::Drain => "drain-deadline",
        }
    }
}

impl fmt::Display for Eviction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-connection deadline state. Owned by the connection, fed by the
/// sweep, consulted once per sweep via [`Lifecycle::check`].
#[derive(Debug, Clone, Copy)]
pub struct Lifecycle {
    phase: ConnPhase,
    /// Tick the current phase was entered (or last re-armed by a
    /// completed frame / fully drained backlog).
    phase_since: Tick,
    /// Tick of the last byte moved in either direction.
    last_io: Tick,
}

impl Lifecycle {
    /// Fresh state for a just-accepted connection.
    pub fn new(now: Tick) -> Lifecycle {
        Lifecycle {
            phase: ConnPhase::Idle,
            phase_since: now,
            last_io: now,
        }
    }

    /// Records that bytes moved on the socket (read or write). Governs
    /// only the idle deadline; partial progress never extends the read
    /// or write deadlines.
    pub fn io_progress(&mut self, now: Tick) {
        self.last_io = now;
    }

    /// Records the phase observed at the end of a sweep. `completed`
    /// re-arms the phase deadline even without a phase change: a parse
    /// that consumed at least one whole frame/line, or a write that
    /// fully drained the backlog, proves the connection is live.
    pub fn observe(&mut self, now: Tick, phase: ConnPhase, completed: bool) {
        if completed || phase != self.phase {
            self.phase_since = now;
        }
        self.phase = phase;
    }

    /// The phase recorded by the last [`Lifecycle::observe`].
    pub fn phase(&self) -> ConnPhase {
        self.phase
    }

    /// Milliseconds since bytes last moved on this connection. The
    /// server's parking gate reads this so busy-but-momentarily-quiet
    /// connections (a pipelined client between bursts) are never parked:
    /// sweeps are microsecond-scale, clock time is not.
    pub fn idle_for(&self, now: Tick) -> u64 {
        now.saturating_sub(self.last_io)
    }

    /// The deadline verdict for this sweep, if any.
    pub fn check(&self, now: Tick, limits: &ServeLimits) -> Option<Eviction> {
        let in_phase = now.saturating_sub(self.phase_since);
        match self.phase {
            ConnPhase::Idle if now.saturating_sub(self.last_io) >= limits.idle_timeout_ms => {
                Some(Eviction::Idle)
            }
            ConnPhase::Reading if in_phase >= limits.read_timeout_ms => Some(Eviction::StalledRead),
            ConnPhase::Writing if in_phase >= limits.write_timeout_ms => Some(Eviction::SlowClient),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> ServeLimits {
        ServeLimits {
            idle_timeout_ms: 100,
            read_timeout_ms: 20,
            write_timeout_ms: 30,
            ..ServeLimits::default()
        }
    }

    #[test]
    fn manual_clock_moves_only_when_advanced() {
        let (clock, handle) = ServeClock::manual();
        assert_eq!(clock.now(), 0);
        handle.advance(250);
        assert_eq!(clock.now(), 250);
        assert_eq!(handle.now(), 250);
        // Cloned handles drive the same clock.
        handle.clone().advance(1);
        assert_eq!(clock.now(), 251);
    }

    #[test]
    fn idle_deadline_counts_from_last_io() {
        let lm = limits();
        let mut life = Lifecycle::new(0);
        assert_eq!(life.check(99, &lm), None);
        assert_eq!(life.check(100, &lm), Some(Eviction::Idle));
        life.io_progress(80);
        assert_eq!(life.check(150, &lm), None);
        assert_eq!(life.check(180, &lm), Some(Eviction::Idle));
    }

    #[test]
    fn partial_reads_do_not_extend_the_read_deadline() {
        let lm = limits();
        let mut life = Lifecycle::new(0);
        life.observe(0, ConnPhase::Reading, false);
        // A slow-loris trickle: bytes arrive, the frame never completes.
        for t in [5, 10, 15] {
            life.io_progress(t);
            life.observe(t, ConnPhase::Reading, false);
            assert_eq!(life.check(t, &lm), None);
        }
        assert_eq!(life.check(20, &lm), Some(Eviction::StalledRead));
        // A completed frame re-arms the deadline.
        life.observe(20, ConnPhase::Reading, true);
        assert_eq!(life.check(39, &lm), None);
        assert_eq!(life.check(40, &lm), Some(Eviction::StalledRead));
    }

    #[test]
    fn write_backlog_deadline_resets_on_full_drain() {
        let lm = limits();
        let mut life = Lifecycle::new(0);
        life.observe(0, ConnPhase::Writing, false);
        assert_eq!(life.check(29, &lm), None);
        assert_eq!(life.check(30, &lm), Some(Eviction::SlowClient));
        // Fully drained: back to Idle, idle clock governs again.
        life.io_progress(25);
        life.observe(25, ConnPhase::Idle, true);
        assert_eq!(life.check(30, &lm), None);
        assert_eq!(life.check(125, &lm), Some(Eviction::Idle));
    }

    #[test]
    fn eviction_names_are_stable() {
        let all = [
            Eviction::Idle,
            Eviction::StalledRead,
            Eviction::SlowClient,
            Eviction::TooLarge,
            Eviction::Drain,
        ];
        let names: Vec<&str> = all.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            [
                "idle-timeout",
                "stalled-read",
                "slow-client",
                "too-large",
                "drain-deadline"
            ]
        );
    }
}
