//! Longitudinal snapshot comparison — the Gouel et al. analysis applied
//! to our own artifact: which prefixes appeared, vanished, moved, or
//! changed the technique backing their location between two `.igds`
//! snapshots.

use crate::store::DatasetStore;
use geo_model::ip::Prefix24;
use geo_model::point::GeoPoint;
use std::fmt;

/// Locations closer than this are "the same place" (~100 m, far below
/// any geolocation technique's resolution).
pub const MOVE_THRESHOLD_KM: f64 = 0.1;

/// A prefix present in both snapshots whose location changed.
#[derive(Debug, Clone, PartialEq)]
pub struct MovedPrefix {
    /// The prefix.
    pub prefix: Prefix24,
    /// Location in the older snapshot.
    pub from: GeoPoint,
    /// Location in the newer snapshot.
    pub to: GeoPoint,
    /// Great-circle displacement in kilometers.
    pub km: f64,
}

/// A prefix whose backing technique changed (method churn).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retagged {
    /// The prefix.
    pub prefix: Prefix24,
    /// Method in the older snapshot.
    pub from: &'static str,
    /// Method in the newer snapshot.
    pub to: &'static str,
}

/// The full diff between two snapshots (`old` → `new`).
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Prefixes only in the newer snapshot.
    pub added: Vec<Prefix24>,
    /// Prefixes only in the older snapshot.
    pub removed: Vec<Prefix24>,
    /// Prefixes whose location moved ≥ [`MOVE_THRESHOLD_KM`].
    pub moved: Vec<MovedPrefix>,
    /// Prefixes whose method changed (may overlap with `moved`).
    pub retagged: Vec<Retagged>,
    /// Prefixes identical in place and method.
    pub unchanged: usize,
}

impl DiffReport {
    /// Compares two stores; both are prefix-sorted, so this is a single
    /// linear merge.
    pub fn between(old: &DatasetStore, new: &DatasetStore) -> DiffReport {
        let (a, b) = (old.entries(), new.entries());
        let mut report = DiffReport::default();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].prefix.cmp(&b[j].prefix) {
                std::cmp::Ordering::Less => {
                    report.removed.push(a[i].prefix);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    report.added.push(b[j].prefix);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let (o, n) = (&a[i], &b[j]);
                    let km = o.location.distance(&n.location).value();
                    let moved = km >= MOVE_THRESHOLD_KM;
                    let retagged = o.evidence.method() != n.evidence.method();
                    if moved {
                        report.moved.push(MovedPrefix {
                            prefix: o.prefix,
                            from: o.location,
                            to: n.location,
                            km,
                        });
                    }
                    if retagged {
                        report.retagged.push(Retagged {
                            prefix: o.prefix,
                            from: o.evidence.method(),
                            to: n.evidence.method(),
                        });
                    }
                    if !moved && !retagged {
                        report.unchanged += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        report.removed.extend(a[i..].iter().map(|e| e.prefix));
        report.added.extend(b[j..].iter().map(|e| e.prefix));
        report
    }

    /// Total churn: every prefix that is not identical across the pair.
    pub fn churn(&self) -> usize {
        let moved_only = self
            .moved
            .iter()
            .filter(|m| !self.retagged.iter().any(|r| r.prefix == m.prefix))
            .count();
        self.added.len() + self.removed.len() + moved_only + self.retagged.len()
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "snapshot diff: +{} added, -{} removed, {} moved, {} retagged, {} unchanged ({} churned)",
            self.added.len(),
            self.removed.len(),
            self.moved.len(),
            self.retagged.len(),
            self.unchanged,
            self.churn()
        )?;
        for p in self.added.iter().take(5) {
            writeln!(f, "  + {p}")?;
        }
        for p in self.removed.iter().take(5) {
            writeln!(f, "  - {p}")?;
        }
        for m in self.moved.iter().take(5) {
            writeln!(f, "  ~ {} moved {:.1} km", m.prefix, m.km)?;
        }
        for r in self.retagged.iter().take(5) {
            writeln!(f, "  * {} {} -> {}", r.prefix, r.from, r.to)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipgeo::publish::{DatasetEntry, Evidence};

    fn entry(prefix: u32, lat: f64, evidence: Evidence) -> DatasetEntry {
        DatasetEntry {
            prefix: Prefix24(prefix),
            location: GeoPoint::new(lat, 10.0),
            evidence,
        }
    }

    #[test]
    fn classifies_every_kind_of_change() {
        let old = DatasetStore::from_entries(
            &[
                entry(1, 0.0, Evidence::Whois),
                entry(2, 10.0, Evidence::Geofeed),
                entry(3, 20.0, Evidence::Whois),
                entry(4, 30.0, Evidence::Whois),
            ],
            1,
            1,
        );
        let new = DatasetStore::from_entries(
            &[
                entry(2, 10.0, Evidence::Geofeed), // unchanged
                entry(3, 21.0, Evidence::Whois),   // moved ~111 km
                entry(4, 30.0, Evidence::Geofeed), // retagged
                entry(5, 40.0, Evidence::Whois),   // added
            ],
            1,
            1,
        );
        let d = DiffReport::between(&old, &new);
        assert_eq!(d.added, vec![Prefix24(5)]);
        assert_eq!(d.removed, vec![Prefix24(1)]);
        assert_eq!(d.moved.len(), 1);
        assert_eq!(d.moved[0].prefix, Prefix24(3));
        assert!((d.moved[0].km - 111.19).abs() < 1.0, "{}", d.moved[0].km);
        assert_eq!(
            d.retagged,
            vec![Retagged {
                prefix: Prefix24(4),
                from: "whois",
                to: "geofeed"
            }]
        );
        assert_eq!(d.unchanged, 1);
        assert_eq!(d.churn(), 4);
        let text = d.to_string();
        assert!(text.contains("+1 added"), "{text}");
        assert!(text.contains("moved"), "{text}");
    }

    #[test]
    fn identical_snapshots_have_zero_churn() {
        let s = DatasetStore::from_entries(&[entry(9, 5.0, Evidence::Whois)], 1, 1);
        let d = DiffReport::between(&s, &s.clone());
        assert_eq!(d.churn(), 0);
        assert_eq!(d.unchanged, 1);
    }
}
