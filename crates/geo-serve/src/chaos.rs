//! Seeded socket-level fault injection for the serve path.
//!
//! The campaign engine proves measurement code against loss and jitter
//! with `atlas_sim::faults`; this module applies the same discipline to
//! the *server*: every hostile behavior a connection exhibits is a pure
//! function of `(seed, domain, connection id)`, so a chaos run is a
//! reproducible experiment, not a flake generator. Two runs with the
//! same seed produce byte-identical chaos schedules, byte-identical
//! response streams, and identical eviction/shed counters — across
//! process restarts *and* across `IPGEO_THREADS` settings, because the
//! server's determinism contract puts scheduling outside the observable.
//!
//! Behaviors ([`ChaosBehavior`], drawn per connection from the seeded
//! stream):
//!
//! - **split writes** — a valid frame dribbled in several chunks; the
//!   server must reassemble across arbitrary read boundaries and answer
//!   normally (then idle-evict the lingering connection);
//! - **stalled writes** — a frame prefix, then silence: the classic
//!   slow-loris, which must become a `stalled-read` eviction;
//! - **mid-frame abort** — a frame prefix, then a closed socket: must
//!   be a plain close, no counter, no leak;
//! - **corrupt byte** — a valid frame with one bit flipped before the
//!   checksum: the decoder must answer a typed error (or, when the
//!   flipped bit enlarges `body_len`, stall out) — classified exactly by
//!   [`ChaosPlan::expected`] *simulating the decoder* on the corrupted
//!   bytes;
//! - **slow loris** — `0..HEADER_LEN` bytes then silence: a silent
//!   connection idles out, a partial header stalls out.
//!
//! [`run`] is the equivalence harness: it drives a real server with
//! `clean_conns` well-behaved clients (binary and line protocol,
//! pipelined) while `chaos_conns` attack, then advances the server's
//! manual [`ServeClock`] until every deadline eviction the plans predict
//! has fired — exactly, no more, no fewer. The clean clients' response
//! digest must equal the digest of an unattacked run; the chaos
//! counters must equal the pure-function prediction. A shed phase then
//! fills a capped server with confirmed connections and proves every
//! over-cap connection is answered `BUSY` in its own protocol.
//!
//! Nothing in a [`ChaosReport`] depends on wall time or worker count,
//! which is what lets CI `cmp` whole harness outputs across runs.

use crate::lifecycle::{ServeClock, ServeLimits};
use crate::proto::{
    encode_request, try_decode_request, try_decode_response, BinaryClient, Decoded, Opcode,
    Response, CHECKSUM_LEN, HEADER_LEN,
};
use crate::server::{query_one, QueryServer, ServeConfig};
use crate::store::DatasetStore;
use geo_model::ip::Ipv4;
use geo_model::rng::{fnv1a, splitmix64, Seed};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Domain label separating the chaos stream from every other seeded
/// subsystem (same discipline as `atlas_sim::faults`).
const DOMAIN: &str = "serve-chaos";

/// Domain label for the clean clients' query workload.
const CLEAN_DOMAIN: &str = "serve-chaos-clean";

/// Upper bound on bytes a harness client will accumulate from the
/// server before declaring the run broken.
const REPLY_BUDGET: usize = 4 * 1024 * 1024;

/// Deadlines used by the attack phase, in manual-clock ticks. Short on
/// purpose: the harness advances the clock explicitly, so these are
/// schedule constants, not tuning.
const ATTACK_LIMITS: ServeLimits = ServeLimits {
    max_connections: 4096,
    max_per_worker: 4096,
    idle_timeout_ms: 500,
    read_timeout_ms: 200,
    write_timeout_ms: 200,
    drain_grace_ms: 100,
    reload_min_interval_ms: 1_000,
};

/// A deterministic counter stream in the `KeyRng` style: every value is
/// a pure function of the construction key.
struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    fn new(key: u64) -> ChaosRng {
        ChaosRng {
            state: splitmix64(key),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// FNV-1a digest of a byte stream — the harness's equivalence primitive,
/// the same hash the `.igds` format and the wire protocol checksum with.
pub fn digest64(bytes: &[u8]) -> u64 {
    fnv1a(bytes)
}

/// Length-prefixed combination of per-connection streams, so stream
/// boundaries cannot alias ("ab","c" vs "a","bc").
fn combine(streams: &[Vec<u8>]) -> u64 {
    let mut acc = Vec::new();
    for s in streams {
        acc.extend_from_slice(&(s.len() as u64).to_le_bytes());
        acc.extend_from_slice(s);
    }
    digest64(&acc)
}

/// One hostile connection behavior, with its drawn parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosBehavior {
    /// Write the valid frame in `chunks` pieces with pauses between.
    SplitWrites {
        /// Number of pieces (≥ 2).
        chunks: usize,
    },
    /// Write `sent` bytes of the frame, then hold the socket open.
    StalledWrites {
        /// Bytes written before the stall (never the whole frame).
        sent: usize,
    },
    /// Write `sent` bytes of the frame, then close the socket.
    MidFrameAbort {
        /// Bytes written before the abort (never the whole frame).
        sent: usize,
    },
    /// Write the whole frame with one bit flipped ahead of the checksum.
    CorruptByte {
        /// Flipped byte offset, in `[1, frame_len - CHECKSUM_LEN)` — the
        /// magic byte is spared so the protocol sniff stays binary, and
        /// the checksum is spared so the flip is always *detectable*.
        offset: usize,
        /// Single-bit XOR mask.
        mask: u8,
    },
    /// Write `sent < HEADER_LEN` bytes, then hold forever.
    SlowLoris {
        /// Bytes written (0 keeps the connection fully silent).
        sent: usize,
    },
}

/// One step of a chaos connection's schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosOp {
    /// Write these bytes.
    Send(Vec<u8>),
    /// Brief wall pause (pacing only; carries no clock meaning).
    Pause,
    /// Close the socket now.
    Abort,
    /// Keep the socket open and read whatever the server sends until it
    /// closes the connection.
    Hold,
}

/// How the server must dispose of one chaos connection — a pure
/// function of the plan, which is what makes chaos counters assertable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedOutcome {
    /// Answered normally, then idle-evicted once the clock passes the
    /// idle deadline (split writes).
    AnsweredThenIdle,
    /// Never completes a frame: a `stalled-read` eviction.
    StalledRead,
    /// Never sends a byte: an idle eviction with no farewell (the
    /// protocol was never even chosen).
    SilentIdle,
    /// The decoder rejects the bytes: a typed error reply, then close.
    ProtoError,
    /// The client aborts first: a plain close, no counter.
    CleanAbort,
}

/// One connection's complete, deterministic attack plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Connection id within the chaos fleet.
    pub conn: u64,
    /// The drawn behavior.
    pub behavior: ChaosBehavior,
    /// The valid base request frame the behavior mangles.
    pub frame: Vec<u8>,
}

impl ChaosPlan {
    /// Draws the plan for chaos connection `conn` — a pure function of
    /// `(seed, DOMAIN, conn)`; nothing else feeds the stream.
    pub fn new(seed: Seed, conn: u64) -> ChaosPlan {
        let mut rng = ChaosRng::new(seed.derive(DOMAIN).0 ^ splitmix64(conn));
        let ips: Vec<Ipv4> = (0..1 + rng.below(4))
            .map(|_| Ipv4(rng.next() as u32))
            .collect();
        let mut frame = Vec::new();
        // At most 4 addresses: far under MAX_BODY, encoding cannot fail.
        let _ = encode_request(&mut frame, Opcode::Locate, &ips);
        let len = frame.len() as u64;
        let behavior = match rng.below(5) {
            0 => ChaosBehavior::SplitWrites {
                chunks: (2 + rng.below(6)) as usize,
            },
            1 => ChaosBehavior::StalledWrites {
                sent: (1 + rng.below(len - 1)) as usize,
            },
            2 => ChaosBehavior::MidFrameAbort {
                sent: (1 + rng.below(len - 1)) as usize,
            },
            3 => ChaosBehavior::CorruptByte {
                offset: (1 + rng.below(len - CHECKSUM_LEN as u64 - 1)) as usize,
                mask: 1u8 << rng.below(8),
            },
            _ => ChaosBehavior::SlowLoris {
                sent: rng.below(HEADER_LEN as u64) as usize,
            },
        };
        ChaosPlan {
            conn,
            behavior,
            frame,
        }
    }

    /// The frame with this plan's corruption applied (`None` for
    /// non-corrupting behaviors).
    fn corrupted(&self) -> Option<Vec<u8>> {
        match self.behavior {
            ChaosBehavior::CorruptByte { offset, mask } => {
                let mut bytes = self.frame.clone();
                if let Some(b) = bytes.get_mut(offset) {
                    *b ^= mask;
                }
                Some(bytes)
            }
            _ => None,
        }
    }

    /// The socket-level schedule this plan executes.
    pub fn ops(&self) -> Vec<ChaosOp> {
        match self.behavior {
            ChaosBehavior::SplitWrites { chunks } => {
                let n = chunks.clamp(1, self.frame.len());
                let base = self.frame.len() / n;
                let rem = self.frame.len() % n;
                let mut ops = Vec::new();
                let mut at = 0;
                for i in 0..n {
                    let take = base + usize::from(i < rem);
                    ops.push(ChaosOp::Send(self.frame[at..at + take].to_vec()));
                    ops.push(ChaosOp::Pause);
                    at += take;
                }
                ops.push(ChaosOp::Hold);
                ops
            }
            ChaosBehavior::StalledWrites { sent } => vec![
                ChaosOp::Send(self.frame[..sent.min(self.frame.len())].to_vec()),
                ChaosOp::Hold,
            ],
            ChaosBehavior::MidFrameAbort { sent } => vec![
                ChaosOp::Send(self.frame[..sent.min(self.frame.len())].to_vec()),
                ChaosOp::Abort,
            ],
            ChaosBehavior::CorruptByte { .. } => {
                let bytes = self.corrupted().unwrap_or_else(|| self.frame.clone());
                vec![ChaosOp::Send(bytes), ChaosOp::Hold]
            }
            ChaosBehavior::SlowLoris { sent } => {
                let mut ops = Vec::new();
                if sent > 0 {
                    ops.push(ChaosOp::Send(
                        self.frame[..sent.min(self.frame.len())].to_vec(),
                    ));
                }
                ops.push(ChaosOp::Hold);
                ops
            }
        }
    }

    /// The server-side outcome this plan must produce. Corruption is
    /// classified by running the *real decoder* over the corrupted
    /// bytes, so the prediction can never drift from the
    /// implementation: a typed decode error means an error reply; a
    /// decoder left waiting for more bytes means a stalled-read
    /// eviction.
    pub fn expected(&self) -> ExpectedOutcome {
        match self.behavior {
            ChaosBehavior::SplitWrites { .. } => ExpectedOutcome::AnsweredThenIdle,
            ChaosBehavior::StalledWrites { .. } => ExpectedOutcome::StalledRead,
            ChaosBehavior::MidFrameAbort { .. } => ExpectedOutcome::CleanAbort,
            ChaosBehavior::SlowLoris { sent } => {
                if sent == 0 {
                    ExpectedOutcome::SilentIdle
                } else {
                    ExpectedOutcome::StalledRead
                }
            }
            ChaosBehavior::CorruptByte { .. } => {
                let bytes = self.corrupted().unwrap_or_else(|| self.frame.clone());
                match try_decode_request(&bytes) {
                    Err(_) => ExpectedOutcome::ProtoError,
                    Ok(Decoded::NeedMore) => ExpectedOutcome::StalledRead,
                    Ok(Decoded::Frame(..)) => ExpectedOutcome::AnsweredThenIdle,
                }
            }
        }
    }
}

/// Harness shape: how many clients of each kind, how hard to shed.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed; every schedule and workload derives from it.
    pub seed: u64,
    /// Well-behaved clients (even ids binary, odd ids line protocol).
    pub clean_conns: usize,
    /// Attacking clients.
    pub chaos_conns: usize,
    /// Queries per clean client.
    pub queries_per_conn: usize,
    /// Server worker threads.
    pub workers: usize,
    /// `max_connections` for the shed phase's capped server.
    pub shed_cap: usize,
    /// Over-cap connections, each of which must be answered `BUSY`.
    pub shed_extra: usize,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 7,
            clean_conns: 6,
            chaos_conns: 2,
            queries_per_conn: 8,
            workers: 2,
            shed_cap: 4,
            shed_extra: 3,
        }
    }
}

/// Everything a chaos run observes that must reproduce under the same
/// seed. Deliberately free of wall-clock and worker-count values: CI
/// compares whole reports byte-for-byte across runs and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosReport {
    /// The seed the run derived everything from.
    pub seed: u64,
    /// Combined digest of every clean client's response byte stream,
    /// in client order.
    pub clean_digest: u64,
    /// Combined digest of every chaos client's observed bytes
    /// (responses, typed error replies, eviction farewells).
    pub chaos_digest: u64,
    /// Idle-deadline evictions during the attack.
    pub evicted_idle: u64,
    /// Stalled-read evictions during the attack.
    pub evicted_stalled: u64,
    /// Typed protocol errors answered during the attack.
    pub proto_errors: u64,
    /// Connections answered `BUSY` in the shed phase.
    pub shed: u64,
    /// Generation number after the mid-stream reload (always 2: the
    /// reload swaps in a second generation of the same snapshot, which
    /// is what proves responses are bit-stable across a swap).
    pub generation: u64,
}

impl ChaosReport {
    /// Stable `key=value` rendering, one line per field — the
    /// `chaos_serve` binary prints exactly this and CI `cmp`s it.
    pub fn lines(&self) -> String {
        format!(
            "seed={}\nclean_digest={:016x}\nchaos_digest={:016x}\nevicted_idle={}\n\
             evicted_stalled={}\nproto_errors={}\nshed={}\ngeneration={}\n",
            self.seed,
            self.clean_digest,
            self.chaos_digest,
            self.evicted_idle,
            self.evicted_stalled,
            self.proto_errors,
            self.shed,
            self.generation,
        )
    }
}

/// The deterministic query workload of one clean client:
/// `(nearest?, address)` pairs mixing guaranteed hits (drawn from the
/// store's own prefixes) with likely misses.
fn clean_workload(
    seed: Seed,
    conn: u64,
    store: &DatasetStore,
    queries: usize,
) -> Vec<(bool, Ipv4)> {
    let mut rng = ChaosRng::new(seed.derive(CLEAN_DOMAIN).0 ^ splitmix64(conn));
    (0..queries)
        .map(|_| {
            let nearest = rng.below(2) == 1;
            let ip = match store
                .entries()
                .get(rng.below(store.len().max(1) as u64) as usize)
            {
                Some(e) if rng.below(2) == 0 => e.prefix.host((1 + rng.below(250)) as u8),
                _ => Ipv4(rng.next() as u32),
            };
            (nearest, ip)
        })
        .collect()
}

/// Runs one clean binary-protocol client: pipelines every query frame,
/// then reads until exactly that many response frames have decoded.
/// Returns the raw response bytes.
fn run_clean_binary(addr: &str, workload: &[(bool, Ipv4)]) -> Result<Vec<u8>, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut frames = Vec::new();
    for &(nearest, ip) in workload {
        let opcode = if nearest {
            Opcode::Nearest
        } else {
            Opcode::Locate
        };
        encode_request(&mut frames, opcode, &[ip]).map_err(|e| format!("encode: {e}"))?;
    }
    stream
        .write_all(&frames)
        .map_err(|e| format!("pipeline write: {e}"))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut consumed = 0;
    let mut seen = 0;
    while seen < workload.len() {
        if buf.len() > REPLY_BUDGET {
            return Err("server reply exceeded the harness budget".into());
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Err("server closed before all responses arrived".into()),
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("read: {e}")),
        };
        buf.extend_from_slice(&chunk[..n]);
        loop {
            match try_decode_response(&buf[consumed..]) {
                Ok(Decoded::Frame(_, used)) => {
                    consumed += used;
                    seen += 1;
                }
                Ok(Decoded::NeedMore) => break,
                Err(e) => return Err(format!("clean client got undecodable bytes: {e}")),
            }
        }
    }
    Ok(buf)
}

/// Runs one clean line-protocol client: pipelines every query line, then
/// reads exactly that many reply lines. Returns the raw reply bytes.
fn run_clean_line(addr: &str, workload: &[(bool, Ipv4)]) -> Result<Vec<u8>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut w = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut batch = String::new();
    for &(nearest, ip) in workload {
        let verb = if nearest { "NEAREST" } else { "LOCATE" };
        batch.push_str(&format!("{verb} {ip}\n"));
    }
    w.write_all(batch.as_bytes())
        .map_err(|e| format!("pipeline write: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut bytes = Vec::new();
    for _ in 0..workload.len() {
        let mut line = String::new();
        // geo-lint: allow(R4, reason = "blocking read in the chaos harness's client, not the serving path")
        let read = reader.read_line(&mut line);
        let n = read.map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("server closed before all replies arrived".into());
        }
        bytes.extend_from_slice(line.as_bytes());
        if bytes.len() > REPLY_BUDGET {
            return Err("server reply exceeded the harness budget".into());
        }
    }
    Ok(bytes)
}

/// Executes one chaos plan against the server and returns every byte
/// the connection observed (the farewell included). A held connection
/// reads until the server evicts it, so this only returns once the
/// harness has advanced the clock past the relevant deadline.
fn run_chaos_conn(addr: &str, plan: &ChaosPlan) -> Result<Vec<u8>, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let _ = stream.set_nodelay(true);
    for op in plan.ops() {
        match op {
            ChaosOp::Send(bytes) => stream
                .write_all(&bytes)
                .map_err(|e| format!("chaos write: {e}"))?,
            ChaosOp::Pause => thread::sleep(Duration::from_millis(1)),
            ChaosOp::Abort => {
                let _ = stream.shutdown(Shutdown::Both);
                return Ok(Vec::new());
            }
            ChaosOp::Hold => {}
        }
    }
    let mut seen = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if seen.len() > REPLY_BUDGET {
            return Err("server sent more than the harness budget".into());
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => seen.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // A reset after eviction is still end-of-stream.
            Err(_) => break,
        }
    }
    Ok(seen)
}

/// The shed phase: a fresh server capped at `shed_cap` connections is
/// filled with confirmed connections, then every over-cap connection
/// must be answered `BUSY` (line protocol for all but the last, which
/// checks the binary `BUSY` frame). Returns the server's shed counter.
fn shed_phase(store: &Arc<DatasetStore>, cfg: &ChaosConfig) -> Result<u64, String> {
    let (clock, _tick) = ServeClock::manual();
    let config = ServeConfig {
        workers: cfg.workers,
        limits: ServeLimits {
            max_connections: cfg.shed_cap,
            ..ServeLimits::default()
        },
        clock,
        snapshot_path: None,
    };
    let server = QueryServer::spawn_with_config(Arc::clone(store), 0, config)
        .map_err(|e| format!("shed spawn: {e}"))?;
    let addr = server.addr().to_string();

    // Fill the cap sequentially, each connection confirmed by a reply
    // before the next connects — so the count the server sheds against
    // is never racing the harness.
    let mut held = Vec::new();
    for i in 0..cfg.shed_cap {
        let stream = TcpStream::connect(&addr).map_err(|e| format!("fill connect: {e}"))?;
        let mut w = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        w.write_all(b"LOCATE 1.2.3.4\n")
            .map_err(|e| format!("fill write: {e}"))?;
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        // geo-lint: allow(R4, reason = "blocking read in the chaos harness's client, not the serving path")
        let read = reader.read_line(&mut reply);
        read.map_err(|e| format!("fill read: {e}"))?;
        if reply.trim_end() == "ERR busy" {
            return Err(format!("connection {i} shed below the cap"));
        }
        held.push((reader, w));
    }

    // Every over-cap connection is shed with an explicit BUSY.
    for i in 0..cfg.shed_extra {
        if i + 1 == cfg.shed_extra {
            let mut client =
                BinaryClient::connect(&addr).map_err(|e| format!("busy connect: {e}"))?;
            match client.query(Opcode::Stats, &[]) {
                Ok(Response::Busy) => {}
                other => return Err(format!("over-cap binary client got {other:?}, not Busy")),
            }
        } else {
            let reply = query_one(&addr, "STATS").map_err(|e| format!("busy query: {e}"))?;
            if reply != "ERR busy" {
                return Err(format!("over-cap line client got {reply:?}, not ERR busy"));
            }
        }
    }
    let shed = server.stats().shed;
    if shed != cfg.shed_extra as u64 {
        return Err(format!(
            "shed counter is {shed}, expected exactly {}",
            cfg.shed_extra
        ));
    }
    drop(held);
    server.shutdown();
    Ok(shed)
}

/// Runs the harness once. With `attack` false the chaos fleet stays
/// home, giving the baseline the attacked run's clean digest must
/// match. Everything in the returned report is a pure function of
/// `(store contents, cfg)`.
pub fn run(
    store: &Arc<DatasetStore>,
    cfg: &ChaosConfig,
    attack: bool,
) -> Result<ChaosReport, String> {
    let seed = Seed(cfg.seed);
    let (clock, tick) = ServeClock::manual();
    let config = ServeConfig {
        workers: cfg.workers,
        limits: ATTACK_LIMITS,
        clock,
        snapshot_path: None,
    };
    let server = QueryServer::spawn_with_config(Arc::clone(store), 0, config)
        .map_err(|e| format!("spawn: {e}"))?;
    let addr = server.addr().to_string();

    // Clean clients, pipelining their seeded workloads.
    let mut clean_handles = Vec::new();
    for id in 0..cfg.clean_conns {
        let addr = addr.clone();
        let store = Arc::clone(store);
        let queries = cfg.queries_per_conn;
        // geo-lint: allow(R4, reason = "harness client threads, not per-connection serving threads")
        clean_handles.push(thread::spawn(move || -> Result<Vec<u8>, String> {
            let workload = clean_workload(seed, id as u64, &store, queries);
            if id % 2 == 0 {
                run_clean_binary(&addr, &workload)
            } else {
                run_clean_line(&addr, &workload)
            }
        }));
    }

    // Mid-stream reload of the same snapshot: the generation swaps under
    // live traffic, and because the content is identical, any response
    // difference the digest catches would be a reload bug.
    let generation = server.reload(Arc::clone(store));

    // The chaos fleet.
    let plans: Vec<ChaosPlan> = if attack {
        (0..cfg.chaos_conns)
            .map(|i| ChaosPlan::new(seed, i as u64))
            .collect()
    } else {
        Vec::new()
    };
    let mut chaos_handles = Vec::new();
    for plan in &plans {
        let addr = addr.clone();
        let plan = plan.clone();
        // geo-lint: allow(R4, reason = "harness client threads, not per-connection serving threads")
        chaos_handles.push(thread::spawn(move || run_chaos_conn(&addr, &plan)));
    }

    let mut clean_streams = Vec::new();
    for h in clean_handles {
        clean_streams.push(
            h.join()
                .map_err(|_| "clean client thread panicked".to_string())??,
        );
    }

    // Advance the manual clock until exactly the predicted evictions
    // have fired. The clean clients are done and gone, so every
    // deadline that fires from here belongs to a chaos connection.
    let mut want_idle = 0u64;
    let mut want_stalled = 0u64;
    let mut want_proto = 0u64;
    for plan in &plans {
        match plan.expected() {
            ExpectedOutcome::AnsweredThenIdle | ExpectedOutcome::SilentIdle => want_idle += 1,
            ExpectedOutcome::StalledRead => want_stalled += 1,
            ExpectedOutcome::ProtoError => want_proto += 1,
            ExpectedOutcome::CleanAbort => {}
        }
    }
    let mut converged = false;
    for _ in 0..3000 {
        let s = server.stats();
        if s.evicted_idle == want_idle
            && s.evicted_stalled == want_stalled
            && s.proto_errors == want_proto
        {
            converged = true;
            break;
        }
        tick.advance(25);
        thread::sleep(Duration::from_millis(2));
    }
    let s = server.stats();
    if !converged {
        return Err(format!(
            "eviction counters never converged: idle {}/{want_idle}, stalled \
             {}/{want_stalled}, proto {}/{want_proto}",
            s.evicted_idle, s.evicted_stalled, s.proto_errors
        ));
    }
    if s.evicted_slow != 0 || s.evicted_too_large != 0 {
        return Err(format!(
            "unpredicted evictions: slow {} too-large {}",
            s.evicted_slow, s.evicted_too_large
        ));
    }

    let mut chaos_streams = Vec::new();
    for h in chaos_handles {
        chaos_streams.push(
            h.join()
                .map_err(|_| "chaos client thread panicked".to_string())??,
        );
    }

    let report = ChaosReport {
        seed: cfg.seed,
        clean_digest: combine(&clean_streams),
        chaos_digest: combine(&chaos_streams),
        evicted_idle: s.evicted_idle,
        evicted_stalled: s.evicted_stalled,
        proto_errors: s.proto_errors,
        shed: shed_phase(store, cfg)?,
        generation,
    };

    // Drain shutdown must complete promptly: every connection is gone.
    server.shutdown_drain();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_seed_and_conn() {
        for conn in 0..16 {
            let a = ChaosPlan::new(Seed(7), conn);
            let b = ChaosPlan::new(Seed(7), conn);
            assert_eq!(a, b);
            assert_eq!(a.ops(), b.ops());
            assert_eq!(a.expected(), b.expected());
        }
        assert_ne!(ChaosPlan::new(Seed(7), 0), ChaosPlan::new(Seed(8), 0));
        assert_ne!(ChaosPlan::new(Seed(7), 0), ChaosPlan::new(Seed(7), 1));
    }

    #[test]
    fn every_behavior_appears_across_a_fleet() {
        let mut seen = [false; 5];
        for conn in 0..128 {
            let idx = match ChaosPlan::new(Seed(3), conn).behavior {
                ChaosBehavior::SplitWrites { .. } => 0,
                ChaosBehavior::StalledWrites { .. } => 1,
                ChaosBehavior::MidFrameAbort { .. } => 2,
                ChaosBehavior::CorruptByte { .. } => 3,
                ChaosBehavior::SlowLoris { .. } => 4,
            };
            seen[idx] = true;
        }
        assert_eq!(seen, [true; 5], "128 draws must cover all 5 behaviors");
    }

    #[test]
    fn split_writes_reassemble_the_exact_frame() {
        for conn in 0..128 {
            let plan = ChaosPlan::new(Seed(11), conn);
            if let ChaosBehavior::SplitWrites { .. } = plan.behavior {
                let sent: Vec<u8> = plan
                    .ops()
                    .into_iter()
                    .filter_map(|op| match op {
                        ChaosOp::Send(b) => Some(b),
                        _ => None,
                    })
                    .flatten()
                    .collect();
                assert_eq!(sent, plan.frame);
            }
        }
    }

    #[test]
    fn corruption_classification_matches_the_decoder() {
        let mut classified = 0;
        for conn in 0..256 {
            let plan = ChaosPlan::new(Seed(5), conn);
            if let ChaosBehavior::CorruptByte { offset, mask } = plan.behavior {
                classified += 1;
                // The flip always lands ahead of the checksum and after
                // the magic byte.
                assert!(offset >= 1 && offset < plan.frame.len() - CHECKSUM_LEN);
                assert_eq!(mask.count_ones(), 1);
                let bytes = plan.corrupted().unwrap_or_default();
                let want = match try_decode_request(&bytes) {
                    Err(_) => ExpectedOutcome::ProtoError,
                    Ok(Decoded::NeedMore) => ExpectedOutcome::StalledRead,
                    Ok(Decoded::Frame(..)) => ExpectedOutcome::AnsweredThenIdle,
                };
                assert_eq!(plan.expected(), want);
            }
        }
        assert!(classified > 10, "only {classified} corrupt plans in 256");
    }

    #[test]
    fn stream_combination_is_boundary_sensitive() {
        let ab_c = combine(&[b"ab".to_vec(), b"c".to_vec()]);
        let a_bc = combine(&[b"a".to_vec(), b"bc".to_vec()]);
        assert_ne!(ab_c, a_bc);
        assert_eq!(ab_c, combine(&[b"ab".to_vec(), b"c".to_vec()]));
    }

    #[test]
    fn report_lines_are_stable_and_machine_free() {
        let report = ChaosReport {
            seed: 7,
            clean_digest: 0xDEAD_BEEF,
            chaos_digest: 0xFEED_FACE,
            evicted_idle: 1,
            evicted_stalled: 2,
            proto_errors: 3,
            shed: 4,
            generation: 2,
        };
        let lines = report.lines();
        assert!(lines.contains("seed=7\n"));
        assert!(lines.contains("clean_digest=00000000deadbeef\n"));
        assert!(lines.contains("generation=2\n"));
        // No wall-clock or thread-count leakage: the rendering is a pure
        // function of the report fields.
        assert_eq!(lines, report.lines());
    }
}
