//! A sharded hot-prefix cache layered over [`DatasetStore`] reads.
//!
//! Real query traffic is zipfian per prefix ("Lost in the Prefix"): a
//! handful of `/24`s absorb most of the load. Every answer the server
//! gives is a pure function of `(snapshot, verb, queried /24)` — the
//! store is immutable for the life of a *generation* — so the cache can
//! hold fully materialized answers (binary location records and
//! preformatted text `OK` lines) with **no invalidation and no effect
//! on response bytes**: a cache hit returns the identical bytes the
//! store path would have produced, so the determinism contract is
//! untouched. Live snapshot reload keeps that argument intact by never
//! invalidating at all: each generation owns a fresh `HotCache`
//! (see `store::StoreHandle`), and the retiring generation's counters
//! are absorbed into the handle's running totals.
//!
//! Sharding: the key's low bits pick one of [`SHARDS`] independent
//! `Mutex` shards, so worker threads contend only when they are
//! hammering the same slice of the keyspace. Each shard is bounded; a
//! full shard runs **clock (second-chance) eviction**: every slot
//! carries a referenced bit that `get` sets, and the clock hand sweeps
//! slots, giving recently-referenced entries one more revolution before
//! replacing the first un-referenced slot it finds. Cold prefixes
//! therefore rotate out as traffic shifts instead of the cache freezing
//! on whatever arrived first. Evictions are counted alongside hits and
//! misses (see [`HotCache::counters`]) and surface in `BENCH_serve.json`.

use crate::proto::LocateRecord;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Number of independent shards (power of two; low key bits select).
pub const SHARDS: usize = 16;

/// Default per-shard capacity (entries).
const SHARD_CAP: usize = 4096;

/// What a cache slot holds: either a binary-protocol record or a
/// preformatted text-protocol reply line (without the trailing newline).
#[derive(Debug, Clone)]
pub enum CacheValue {
    /// A binary LOCATE/NEAREST answer record.
    Record(LocateRecord),
    /// A complete text-protocol reply line (`OK …`), shared not copied.
    Line(Arc<str>),
}

/// The verbs a cached answer can belong to. Part of the key: the same
/// prefix can hold an exact-lookup answer, a nearest answer, and their
/// text-protocol renderings simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKind {
    /// Binary LOCATE record.
    BinLocate = 0,
    /// Binary NEAREST record.
    BinNearest = 1,
    /// Text `LOCATE` OK-line.
    LineLocate = 2,
    /// Text `NEAREST` OK-line.
    LineNearest = 3,
}

/// Monotonic cache traffic counters since construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the store.
    pub misses: u64,
    /// Resident entries replaced by the clock hand.
    pub evictions: u64,
}

impl CacheCounters {
    /// Adds another counter set into this one — used by the generation
    /// store handle to carry a retired generation's cache traffic into
    /// the server-lifetime totals across a live snapshot reload.
    pub fn absorb(&mut self, other: CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }

    /// Hit fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One resident entry plus its second-chance bit.
#[derive(Debug)]
struct Slot {
    key: u64,
    value: CacheValue,
    referenced: bool,
}

/// A shard: slot arena, key index, and the clock hand position.
#[derive(Debug, Default)]
struct Shard {
    slots: Vec<Slot>,
    index: HashMap<u64, usize>,
    hand: usize,
}

/// The sharded cache. Cheap to clone a handle via `Arc` at the server
/// level; internally all shards are independently locked.
#[derive(Debug)]
pub struct HotCache {
    shards: Vec<Mutex<Shard>>,
    shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for HotCache {
    fn default() -> HotCache {
        HotCache::new()
    }
}

impl HotCache {
    /// A cache with the default per-shard capacity.
    pub fn new() -> HotCache {
        HotCache::with_shard_capacity(SHARD_CAP)
    }

    /// A cache bounding each shard at `shard_cap` entries.
    pub fn with_shard_capacity(shard_cap: usize) -> HotCache {
        HotCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap: shard_cap.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn key(kind: CacheKind, prefix: u32) -> u64 {
        (kind as u64) << 32 | u64::from(prefix)
    }

    // geo-lint: allow(R1T, reason = "index is masked to SHARDS-1 and `shards` is built with exactly SHARDS entries")
    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // Prefixes are dense in their low bits, so low bits shard well.
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    /// Looks up a cached answer; a hit marks the slot referenced, buying
    /// it a second chance against the clock hand.
    pub fn get(&self, kind: CacheKind, prefix: u32) -> Option<CacheValue> {
        let key = Self::key(kind, prefix);
        let mut shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let found = shard.index.get(&key).copied().map(|i| {
            shard.slots[i].referenced = true;
            shard.slots[i].value.clone()
        });
        drop(shard);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Admits an answer, running the clock hand when the shard is full:
    /// referenced slots get their bit cleared and one more revolution;
    /// the first un-referenced slot is replaced. Concurrent inserts of
    /// the same key are benign: both value copies are byte-identical by
    /// the purity argument above, so last-write-wins changes nothing.
    // geo-lint: allow(R1T, reason = "slot indices come from the shard's own index map and `hand % slots.len()`, both invariantly in bounds")
    pub fn put(&self, kind: CacheKind, prefix: u32, value: CacheValue) {
        let key = Self::key(kind, prefix);
        let mut shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(&i) = shard.index.get(&key) {
            shard.slots[i].value = value;
            shard.slots[i].referenced = true;
            return;
        }
        if shard.slots.len() < self.shard_cap {
            let i = shard.slots.len();
            shard.slots.push(Slot {
                key,
                value,
                referenced: false,
            });
            shard.index.insert(key, i);
            return;
        }
        // Clock sweep: terminates within two revolutions because the
        // first pass clears every referenced bit it crosses.
        loop {
            let i = shard.hand;
            shard.hand = (shard.hand + 1) % shard.slots.len();
            if shard.slots[i].referenced {
                shard.slots[i].referenced = false;
                continue;
            }
            let old = shard.slots[i].key;
            shard.index.remove(&old);
            shard.slots[i] = Slot {
                key,
                value,
                referenced: false,
            };
            shard.index.insert(key, i);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }

    /// Hit/miss/eviction counters since construction.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::ip::Prefix24;

    fn rec(prefix: u32) -> LocateRecord {
        LocateRecord {
            hit: true,
            prefix: Prefix24(prefix),
            lat_bits: 42,
            lon_bits: 7,
            method: 3,
            distance: 0,
            confidence_bits: 0.75f64.to_bits(),
        }
    }

    /// The i-th key landing in the same shard as `base`.
    fn same_shard(base: u32, i: u32) -> u32 {
        base + i * SHARDS as u32
    }

    #[test]
    fn kinds_do_not_collide() {
        let c = HotCache::new();
        c.put(CacheKind::BinLocate, 10, CacheValue::Record(rec(10)));
        c.put(CacheKind::LineLocate, 10, CacheValue::Line("OK ten".into()));
        assert!(matches!(
            c.get(CacheKind::BinLocate, 10),
            Some(CacheValue::Record(r)) if r == rec(10)
        ));
        assert!(matches!(
            c.get(CacheKind::LineLocate, 10),
            Some(CacheValue::Line(l)) if &*l == "OK ten"
        ));
        assert!(c.get(CacheKind::BinNearest, 10).is_none());
        assert_eq!(
            c.counters(),
            CacheCounters {
                hits: 2,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn full_shards_evict_instead_of_refusing() {
        let c = HotCache::with_shard_capacity(2);
        for i in 0..4u32 {
            let p = same_shard(5, i);
            c.put(CacheKind::BinLocate, p, CacheValue::Record(rec(p)));
        }
        // Each insert past capacity replaced the slot under the hand, so
        // the two newest keys are resident and two evictions happened.
        let cached: Vec<bool> = (0..4u32)
            .map(|i| c.get(CacheKind::BinLocate, same_shard(5, i)).is_some())
            .collect();
        assert_eq!(cached, vec![false, false, true, true]);
        assert_eq!(c.counters().evictions, 2);
        // Re-putting an existing key refreshes in place, no eviction.
        c.put(
            CacheKind::BinLocate,
            same_shard(5, 3),
            CacheValue::Record(rec(same_shard(5, 3))),
        );
        assert_eq!(c.counters().evictions, 2);
    }

    #[test]
    fn referenced_slots_survive_one_revolution() {
        let c = HotCache::with_shard_capacity(2);
        let (a, b, d) = (same_shard(5, 0), same_shard(5, 1), same_shard(5, 2));
        c.put(CacheKind::BinLocate, a, CacheValue::Record(rec(a)));
        c.put(CacheKind::BinLocate, b, CacheValue::Record(rec(b)));
        // Touch `a` so its referenced bit protects it from the hand.
        assert!(c.get(CacheKind::BinLocate, a).is_some());
        c.put(CacheKind::BinLocate, d, CacheValue::Record(rec(d)));
        // The hand skipped referenced `a` (clearing its bit) and evicted
        // un-referenced `b`.
        assert!(c.get(CacheKind::BinLocate, a).is_some());
        assert!(c.get(CacheKind::BinLocate, b).is_none());
        assert!(c.get(CacheKind::BinLocate, d).is_some());
        assert_eq!(c.counters().evictions, 1);
    }
}
