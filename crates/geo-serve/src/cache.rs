//! A sharded hot-prefix cache layered over [`DatasetStore`] reads.
//!
//! Real query traffic is zipfian per prefix ("Lost in the Prefix"): a
//! handful of `/24`s absorb most of the load. Every answer the server
//! gives is a pure function of `(snapshot, verb, queried /24)` — the
//! store is immutable for the life of a server — so the cache can hold
//! fully materialized answers (binary location records and preformatted
//! text `OK` lines) with **no invalidation and no effect on response
//! bytes**: a cache hit returns the identical bytes the store path would
//! have produced, so the determinism contract is untouched.
//!
//! Sharding: the key's low bits pick one of [`SHARDS`] independent
//! `Mutex<HashMap>`s, so worker threads contend only when they are
//! hammering the same slice of the keyspace. Each shard is bounded; a
//! full shard simply stops admitting (the keyspace is bounded by the
//! snapshot's prefix count times a handful of verbs, so with the default
//! capacity the steady state is "everything hot fits").

use crate::proto::LocateRecord;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Number of independent shards (power of two; low key bits select).
pub const SHARDS: usize = 16;

/// Default per-shard capacity (entries).
const SHARD_CAP: usize = 4096;

/// What a cache slot holds: either a binary-protocol record or a
/// preformatted text-protocol reply line (without the trailing newline).
#[derive(Debug, Clone)]
pub enum CacheValue {
    /// A binary LOCATE/NEAREST answer record.
    Record(LocateRecord),
    /// A complete text-protocol reply line (`OK …`), shared not copied.
    Line(Arc<str>),
}

/// The verbs a cached answer can belong to. Part of the key: the same
/// prefix can hold an exact-lookup answer, a nearest answer, and their
/// text-protocol renderings simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKind {
    /// Binary LOCATE record.
    BinLocate = 0,
    /// Binary NEAREST record.
    BinNearest = 1,
    /// Text `LOCATE` OK-line.
    LineLocate = 2,
    /// Text `NEAREST` OK-line.
    LineNearest = 3,
}

/// The sharded cache. Cheap to clone a handle via `Arc` at the server
/// level; internally all shards are independently locked.
#[derive(Debug)]
pub struct HotCache {
    shards: Vec<Mutex<HashMap<u64, CacheValue>>>,
    shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for HotCache {
    fn default() -> HotCache {
        HotCache::new()
    }
}

impl HotCache {
    /// A cache with the default per-shard capacity.
    pub fn new() -> HotCache {
        HotCache::with_shard_capacity(SHARD_CAP)
    }

    /// A cache bounding each shard at `shard_cap` entries.
    pub fn with_shard_capacity(shard_cap: usize) -> HotCache {
        HotCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn key(kind: CacheKind, prefix: u32) -> u64 {
        (kind as u64) << 32 | u64::from(prefix)
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, CacheValue>> {
        // Prefixes are dense in their low bits, so low bits shard well.
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    /// Looks up a cached answer.
    pub fn get(&self, kind: CacheKind, prefix: u32) -> Option<CacheValue> {
        let key = Self::key(kind, prefix);
        let shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let found = shard.get(&key).cloned();
        drop(shard);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Admits an answer unless the shard is full. Concurrent inserts of
    /// the same key are benign: both value copies are byte-identical by
    /// the purity argument above, so last-write-wins changes nothing.
    pub fn put(&self, kind: CacheKind, prefix: u32, value: CacheValue) {
        let key = Self::key(kind, prefix);
        let mut shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if shard.len() < self.shard_cap || shard.contains_key(&key) {
            shard.insert(key, value);
        }
    }

    /// `(hits, misses)` since construction.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::ip::Prefix24;

    fn rec(prefix: u32) -> LocateRecord {
        LocateRecord {
            hit: true,
            prefix: Prefix24(prefix),
            lat_bits: 42,
            lon_bits: 7,
            method: 3,
            distance: 0,
        }
    }

    #[test]
    fn kinds_do_not_collide() {
        let c = HotCache::new();
        c.put(CacheKind::BinLocate, 10, CacheValue::Record(rec(10)));
        c.put(CacheKind::LineLocate, 10, CacheValue::Line("OK ten".into()));
        assert!(matches!(
            c.get(CacheKind::BinLocate, 10),
            Some(CacheValue::Record(r)) if r == rec(10)
        ));
        assert!(matches!(
            c.get(CacheKind::LineLocate, 10),
            Some(CacheValue::Line(l)) if &*l == "OK ten"
        ));
        assert!(c.get(CacheKind::BinNearest, 10).is_none());
        assert_eq!(c.counters(), (2, 1));
    }

    #[test]
    fn full_shards_stop_admitting_but_still_serve() {
        let c = HotCache::with_shard_capacity(2);
        // Same shard: keys congruent mod SHARDS.
        let base = 5u32;
        for i in 0..4u32 {
            let p = base + i * SHARDS as u32;
            c.put(CacheKind::BinLocate, p, CacheValue::Record(rec(p)));
        }
        let cached: Vec<bool> = (0..4u32)
            .map(|i| {
                c.get(CacheKind::BinLocate, base + i * SHARDS as u32)
                    .is_some()
            })
            .collect();
        // The first two fit; the rest were refused, not evicted.
        assert_eq!(cached, vec![true, true, false, false]);
        // Re-putting an existing key is always allowed (refresh).
        c.put(CacheKind::BinLocate, base, CacheValue::Record(rec(base)));
        assert!(c.get(CacheKind::BinLocate, base).is_some());
    }
}
