//! End-to-end contract of the servable-dataset layer: publishing is
//! byte-deterministic, the TCP server answers many concurrent clients
//! correctly, and the snapshot diff surfaces churn between worlds.

use geo_model::rng::Seed;
use geo_serve::{format, query_one, DatasetStore, DiffReport, Manifest, QueryServer};
use ipgeo::publish::{build_dataset, DatasetEntry};
use net_sim::Network;
use std::sync::Arc;
use world_sim::{World, WorldConfig};

/// The `ipgeo publish` producer pipeline at test scale: small world,
/// sanitized probes, a modest coverage mesh.
fn publish(seed: u64) -> Vec<DatasetEntry> {
    let world = World::generate(WorldConfig::small(Seed(seed))).unwrap();
    let net = Network::new(Seed(seed));
    let vps: Vec<_> = world
        .probes
        .iter()
        .copied()
        .filter(|&p| !world.host(p).is_mis_geolocated())
        .collect();
    let mesh = ipgeo::two_step::greedy_coverage(&world, &vps, 60.min(vps.len()));
    let prefixes: Vec<_> = world
        .anchors
        .iter()
        .map(|&a| world.host(a).ip.prefix24())
        .collect();
    build_dataset(&world, &net, &mesh, &prefixes, 1)
}

#[test]
fn publishing_twice_with_the_same_seed_is_byte_identical() {
    // Two fully independent world generations and campaigns.
    let first = format::encode(&publish(631), 631, 1);
    let second = format::encode(&publish(631), 631, 1);
    assert_eq!(first, second, "same seed must give a byte-identical .igds");

    // And the files written from them are identical too.
    let dir = std::env::temp_dir().join("igds-determinism-test");
    std::fs::create_dir_all(&dir).unwrap();
    let (a, b) = (dir.join("a.igds"), dir.join("b.igds"));
    std::fs::write(&a, &first).unwrap();
    std::fs::write(&b, &second).unwrap();
    assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    std::fs::remove_file(&a).unwrap();
    std::fs::remove_file(&b).unwrap();
}

#[test]
fn server_answers_eight_concurrent_clients_correctly() {
    let store = Arc::new(DatasetStore::from_entries(&publish(631), 631, 1));
    assert!(!store.is_empty());
    let server = QueryServer::spawn(store.clone(), 0).unwrap();
    let addr = server.addr().to_string();

    const CLIENTS: usize = 8;
    const QUERIES_PER_CLIENT: usize = 24;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (store, addr) = (store.clone(), addr.clone());
            scope.spawn(move || {
                // One persistent connection per client, many queries on it.
                use std::io::{BufRead, BufReader, Write};
                let stream = std::net::TcpStream::connect(&addr).unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                for q in 0..QUERIES_PER_CLIENT {
                    // Clients walk the store at interleaved offsets, so
                    // all of them hit overlapping entries concurrently.
                    let entry = &store.entries()[(c + q * CLIENTS) % store.len()];
                    let ip = entry.prefix.host(1);
                    writeln!(writer, "LOCATE {ip}").unwrap();
                    let mut reply = String::new();
                    reader.read_line(&mut reply).unwrap();
                    assert_eq!(reply.trim_end(), format!("OK {entry}"));
                }
                writeln!(writer, "QUIT").unwrap();
                let mut reply = String::new();
                reader.read_line(&mut reply).unwrap();
                assert_eq!(reply.trim_end(), "BYE");
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.hits, (CLIENTS * QUERIES_PER_CLIENT) as u64);
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.connections, CLIENTS as u64);
    // STATS over the wire agrees with the handle's snapshot.
    let line = query_one(&addr, "STATS").unwrap();
    assert!(line.contains(&format!("hits={}", stats.hits)), "{line}");
    server.shutdown();
}

#[test]
fn diff_between_different_seeds_reports_churn() {
    let old = DatasetStore::from_entries(&publish(631), 631, 1);
    let new = DatasetStore::from_entries(&publish(632), 632, 1);
    let diff = DiffReport::between(&old, &new);
    assert!(
        diff.churn() > 0,
        "different worlds must disagree somewhere: {diff}"
    );
    // The diff partitions both snapshots completely.
    let same_or_changed = diff.unchanged
        + diff.moved.len()
        + diff
            .retagged
            .iter()
            .filter(|r| !diff.moved.iter().any(|m| m.prefix == r.prefix))
            .count();
    assert_eq!(old.len(), diff.removed.len() + same_or_changed);
    assert_eq!(new.len(), diff.added.len() + same_or_changed);

    // The manifest sees every entry exactly once.
    let manifest = Manifest::of(&new);
    assert_eq!(
        manifest.methods.iter().map(|(_, n)| n).sum::<usize>(),
        new.len()
    );
}
