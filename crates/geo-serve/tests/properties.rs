//! Property tests of the `.igds` format and the store's lookup index:
//! arbitrary entry sets survive a save→load round trip bit-identically,
//! and binary-search lookups agree with a linear scan of the source.

use geo_model::ip::{Ipv4, Prefix24};
use geo_model::point::GeoPoint;
use geo_model::units::Ms;
use geo_serve::format;
use geo_serve::DatasetStore;
use ipgeo::publish::{DatasetEntry, Evidence};
use proptest::prelude::*;
use world_sim::ids::HostId;

/// Builds one entry from a generated tuple: a 24-bit prefix, a location,
/// and one of the four evidence classes with tag-derived detail values.
fn entry((prefix, lat, lon, tag, detail): (u32, f64, f64, u8, u32)) -> DatasetEntry {
    let evidence = match tag {
        0 => Evidence::Geofeed,
        1 => Evidence::DnsHint {
            hostname: format!("host-{detail}.as{}.example.net", detail % 97),
        },
        2 => Evidence::Latency {
            vps: (detail % 512) as usize,
            // An arbitrary but finite bit pattern derived from the tuple.
            best_rtt: Ms((detail % 10_000) as f64 / 16.0),
            best_vp: HostId(detail),
        },
        _ => Evidence::Whois,
    };
    DatasetEntry {
        prefix: Prefix24(prefix),
        location: GeoPoint::new(lat, lon),
        evidence,
    }
}

/// The canonical form the format promises: sorted by prefix, first record
/// kept for duplicated prefixes.
fn canonical(mut entries: Vec<DatasetEntry>) -> Vec<DatasetEntry> {
    entries.sort_by_key(|e| e.prefix);
    entries.dedup_by_key(|e| e.prefix);
    entries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode→decode returns the canonical entry set with bit-exact
    /// coordinates and RTTs, and re-encoding reproduces the same bytes.
    #[test]
    fn snapshot_round_trips_bit_identically(
        raw in prop::collection::vec(
            (0u32..0x0100_0000, -90.0f64..90.0, -180.0f64..180.0, 0u8..4, any::<u32>()),
            0..48,
        ),
        seed in any::<u64>(),
        nonce in any::<u64>(),
    ) {
        let entries: Vec<DatasetEntry> = raw.into_iter().map(entry).collect();
        let bytes = format::encode(&entries, seed, nonce);
        let (header, decoded) = format::decode(&bytes).expect("fresh snapshot decodes");
        let expected = canonical(entries);

        prop_assert_eq!(header.world_seed, seed);
        prop_assert_eq!(header.nonce, nonce);
        prop_assert_eq!(decoded.len(), expected.len());
        for (d, e) in decoded.iter().zip(&expected) {
            prop_assert_eq!(d.prefix, e.prefix);
            prop_assert_eq!(d.location.lat().to_bits(), e.location.lat().to_bits());
            prop_assert_eq!(d.location.lon().to_bits(), e.location.lon().to_bits());
            prop_assert_eq!(&d.evidence, &e.evidence);
        }
        // Determinism: a second encode of the decoded entries is the same
        // file, byte for byte.
        prop_assert_eq!(format::encode(&decoded, seed, nonce), bytes);
    }

    /// Arbitrary byte soup and arbitrarily mutated valid snapshots always
    /// decode to a typed `Result` — the decoder never panics, whatever the
    /// input (the geo-serve hardening contract).
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        soup in prop::collection::vec(any::<u8>(), 0..512),
        raw in prop::collection::vec(
            (0u32..0x0100_0000, -90.0f64..90.0, -180.0f64..180.0, 0u8..4, any::<u32>()),
            0..16,
        ),
        cut in any::<u64>(),
        flip_at in any::<u64>(),
        flip_bit in 0u8..8,
        seed in any::<u64>(),
    ) {
        // Pure noise.
        let _ = format::decode(&soup);

        // A valid snapshot, truncated at an arbitrary point: must fail,
        // and must fail with a typed error rather than a panic.
        let entries: Vec<DatasetEntry> = raw.into_iter().map(entry).collect();
        let good = format::encode(&entries, seed, 1);
        let len = (cut as usize) % good.len().max(1);
        prop_assert!(format::decode(&good[..len.min(good.len() - 1)]).is_err());

        // A single bit flip anywhere: decoding may fail (typed) but must
        // never panic. On the rare no-op regions it may still succeed.
        let mut mutated = good.clone();
        let at = (flip_at as usize) % mutated.len();
        mutated[at] ^= 1 << flip_bit;
        let _ = format::decode(&mutated);
    }

    /// Binary-search lookups agree with a linear scan over the source
    /// entries, for exact, batch, and nearest queries.
    #[test]
    fn store_lookups_agree_with_linear_scan(
        raw in prop::collection::vec(
            (0u32..4096, -90.0f64..90.0, -180.0f64..180.0, 0u8..4, any::<u32>()),
            1..64,
        ),
        probes in prop::collection::vec((0u32..4096, 0u32..256), 1..32),
    ) {
        let entries = canonical(raw.into_iter().map(entry).collect());
        let store = DatasetStore::from_entries(&entries, 1, 1);
        let ips: Vec<Ipv4> = probes
            .iter()
            .map(|&(p, byte)| Prefix24(p).host(byte as u8))
            .collect();
        let batch = store.lookup_batch(&ips);

        for (ip, from_batch) in ips.iter().zip(&batch) {
            let scan = entries.iter().find(|e| e.prefix.contains(*ip));
            prop_assert_eq!(store.lookup(*ip), scan);
            prop_assert_eq!(from_batch.as_ref(), scan);

            let (nearest, dist) = store.lookup_nearest(*ip).expect("store is non-empty");
            let best = entries
                .iter()
                .map(|e| e.prefix.0.abs_diff(ip.prefix24().0))
                .min()
                .expect("store is non-empty");
            prop_assert_eq!(dist, best);
            prop_assert_eq!(nearest.prefix.0.abs_diff(ip.prefix24().0), best);
        }
    }
}
