//! The event-loop server's acceptance contract: response byte streams
//! are a pure function of `(snapshot, per-connection request stream)` —
//! bit-identical across worker counts, connection interleavings, and
//! pipelining depths — and the binary frame decoder survives arbitrary
//! byte soup without panicking.

use geo_model::ip::{Ipv4, Prefix24};
use geo_model::point::GeoPoint;
use geo_serve::proto::{
    self, encode_request, try_decode_request, try_decode_response, Decoded, Opcode,
};
use geo_serve::{DatasetStore, QueryServer};
use ipgeo::publish::{DatasetEntry, Evidence};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn store() -> DatasetStore {
    let entries: Vec<DatasetEntry> = (0..300u32)
        .map(|i| DatasetEntry {
            prefix: Prefix24(i * 7 + 3),
            location: GeoPoint::new(f64::from(i % 170) - 85.0, f64::from(i % 350) - 175.0),
            evidence: match i % 3 {
                0 => Evidence::Geofeed,
                1 => Evidence::DnsHint {
                    hostname: format!("edge-{i}.example.net"),
                },
                _ => Evidence::Whois,
            },
        })
        .collect();
    DatasetStore::from_entries(&entries, 99, 1)
}

/// The fixed per-connection workloads: a mix of binary frames at
/// different batch sizes and verbs, plus one line-protocol client.
/// Returns each connection's full request byte stream (binary) or lines.
fn binary_workloads() -> Vec<Vec<u8>> {
    let ip = |i: u32| Prefix24(i % 2200).host((i % 200) as u8);
    (0..4u32)
        .map(|conn| {
            let mut frames = Vec::new();
            for f in 0..6u32 {
                let n = 1 + ((conn * 6 + f) % 17) as usize;
                let ips: Vec<Ipv4> = (0..n as u32).map(|k| ip(conn * 131 + f * 37 + k)).collect();
                let opcode = if (conn + f) % 3 == 0 {
                    Opcode::Nearest
                } else {
                    Opcode::Locate
                };
                encode_request(&mut frames, opcode, &ips).unwrap();
            }
            frames
        })
        .collect()
}

/// Runs every workload against a server with `workers` workers,
/// pipelining `depth` frames at a time, and returns each connection's
/// complete response byte stream.
fn run_workloads(workers: usize, depth: usize) -> Vec<Vec<u8>> {
    let server = QueryServer::spawn_with_workers(Arc::new(store()), 0, workers).unwrap();
    let addr = server.addr().to_string();
    let mut streams: Vec<TcpStream> = binary_workloads()
        .iter()
        .map(|_| {
            let s = TcpStream::connect(&addr).unwrap();
            s.set_nodelay(true).unwrap();
            s
        })
        .collect();
    // Interleave sends across connections in `depth`-frame bursts so
    // higher depth genuinely pipelines more unacknowledged frames.
    let workloads = binary_workloads();
    let frame_bounds: Vec<Vec<usize>> = workloads
        .iter()
        .map(|bytes| {
            let mut bounds = vec![0];
            let mut at = 0;
            while at < bytes.len() {
                let Ok(Decoded::Frame(_, used)) = try_decode_request(&bytes[at..]) else {
                    panic!("workload frames must decode");
                };
                at += used;
                bounds.push(at);
            }
            bounds
        })
        .collect();
    let mut cursor = vec![0usize; workloads.len()];
    loop {
        let mut sent_any = false;
        for (i, stream) in streams.iter_mut().enumerate() {
            let bounds = &frame_bounds[i];
            let from = cursor[i];
            let to = (from + depth).min(bounds.len() - 1);
            if from < to {
                stream
                    .write_all(&workloads[i][bounds[from]..bounds[to]])
                    .unwrap();
                cursor[i] = to;
                sent_any = true;
            }
        }
        if !sent_any {
            break;
        }
    }
    for stream in &streams {
        stream.shutdown(std::net::Shutdown::Write).unwrap();
    }
    let responses: Vec<Vec<u8>> = streams
        .iter_mut()
        .map(|s| {
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).unwrap();
            buf
        })
        .collect();
    server.shutdown();
    responses
}

#[test]
fn responses_are_bit_identical_across_workers_and_pipelining() {
    let baseline = run_workloads(1, 1);
    assert!(
        baseline.iter().all(|r| !r.is_empty()),
        "every connection must get answers"
    );
    // The acceptance matrix: worker count 1 vs 8 (the CI chaos pair)
    // crossed with pipelining depths, all against the serial baseline.
    for (workers, depth) in [(1, 6), (8, 1), (8, 3), (8, 6)] {
        let got = run_workloads(workers, depth);
        assert_eq!(
            got, baseline,
            "workers={workers} depth={depth} must reproduce the serial byte streams"
        );
    }
}

#[test]
fn line_and_binary_clients_interleave_on_one_server() {
    let server = QueryServer::spawn_with_workers(Arc::new(store()), 0, 2).unwrap();
    let addr = server.addr().to_string();
    let mut bin = geo_serve::BinaryClient::connect(&addr).unwrap();
    for i in 0..20u32 {
        let ips = vec![Prefix24(i * 7 + 3).host(1)];
        let line = geo_serve::query_one(&addr, &format!("LOCATE {}", ips[0])).unwrap();
        let geo_serve::Response::Records { records, .. } = bin.query(Opcode::Locate, &ips).unwrap()
        else {
            panic!("expected records");
        };
        // The two protocols agree on every answer.
        assert_eq!(records[0].hit, line.starts_with("OK"), "{line}");
        if records[0].hit {
            assert!(
                line.contains(&format!("{}/24", Ipv4(records[0].prefix.0 << 8))),
                "{line}"
            );
        }
    }
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary byte soup never panics the request decoder: every input
    /// is either a frame, a request for more bytes, or a typed error.
    #[test]
    fn request_decoder_survives_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = try_decode_request(&bytes);
    }

    /// Same for the response decoder (the client side).
    #[test]
    fn response_decoder_survives_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = try_decode_response(&bytes);
    }

    /// Magic-prefixed soup exercises the deep header/body/checksum paths.
    #[test]
    fn magic_prefixed_soup_never_panics(
        soup in prop::collection::vec(any::<u8>(), 0..512),
        response in any::<bool>(),
    ) {
        let mut bytes = soup;
        if bytes.is_empty() {
            bytes.push(0);
        }
        bytes[0] = if response { proto::RESP_MAGIC } else { proto::REQ_MAGIC };
        if response {
            let _ = try_decode_response(&bytes);
        } else {
            let _ = try_decode_request(&bytes);
        }
    }

    /// Truncating or bit-flipping a valid frame is always NeedMore or a
    /// typed error — never a panic, never a bogus decode that differs in
    /// length from the original.
    #[test]
    fn mutated_valid_frames_stay_safe(
        n in 0usize..40,
        cut_raw in any::<u64>(),
        flip_raw in any::<u64>(),
        flip_bit in 0u8..8,
    ) {
        let ips: Vec<Ipv4> = (0..n as u32).map(|i| Ipv4(i * 0x0101)).collect();
        let mut frame = Vec::new();
        encode_request(&mut frame, Opcode::Locate, &ips).unwrap();

        let cut = (cut_raw % frame.len() as u64) as usize;
        prop_assert_eq!(try_decode_request(&frame[..cut]).unwrap(), Decoded::NeedMore);

        let at = (flip_raw % frame.len() as u64) as usize;
        let mut flipped = frame.clone();
        flipped[at] ^= 1 << flip_bit;
        match try_decode_request(&flipped) {
            // The checksum covers every non-checksum byte and vice
            // versa, so a single flipped bit can never decode as a
            // valid frame — but if that guarantee ever weakened, the
            // decode must at least still consume the true length.
            Ok(Decoded::Frame(_, used)) => prop_assert_eq!(used, frame.len()),
            Ok(Decoded::NeedMore) | Err(_) => {}
        }
    }
}
