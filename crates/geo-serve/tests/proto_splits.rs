//! Read/write boundary independence of the binary protocol.
//!
//! The event-loop server reads whatever the kernel hands it — a frame
//! can arrive glued to its neighbor, split mid-header, or one byte at a
//! time — and its responses are flushed in whatever chunks the socket
//! accepts. These properties pin the decoder-side contract both
//! directions: **any** chunking of a valid frame stream decodes to
//! exactly the frames that whole-buffer decoding yields, in order, with
//! nothing invented at the seams. This is the pure-function core of the
//! chaos harness's split-writes behavior.

use geo_model::ip::{Ipv4, Prefix24};
use geo_serve::proto::{
    self, encode_error, encode_request, try_decode_request, try_decode_response, Decoded, Opcode,
    Request, Response, ResponseWriter,
};
use proptest::prelude::*;

/// Feeds `stream` to an incremental decoder in the given chunk sizes
/// (cycled until the stream is exhausted), the way the server's read
/// loop would see it, and returns every frame decoded at every step.
fn decode_in_chunks<T, E: std::fmt::Debug>(
    stream: &[u8],
    chunks: &[usize],
    decode: impl Fn(&[u8]) -> Result<Decoded<T>, E>,
) -> Vec<T> {
    let mut buf: Vec<u8> = Vec::new();
    let mut consumed = 0;
    let mut out = Vec::new();
    let mut fed = 0;
    let mut chunk_idx = 0;
    while fed < stream.len() {
        let take = chunks
            .get(chunk_idx % chunks.len())
            .copied()
            .unwrap_or(1)
            .clamp(1, stream.len() - fed);
        chunk_idx += 1;
        buf.extend_from_slice(&stream[fed..fed + take]);
        fed += take;
        while let Decoded::Frame(item, used) =
            decode(&buf[consumed..]).expect("valid stream never errors")
        {
            out.push(item);
            consumed += used;
        }
    }
    assert_eq!(consumed, buf.len(), "no bytes may linger after the stream");
    out
}

/// Whole-buffer reference decode.
fn decode_whole<T, E: std::fmt::Debug>(
    stream: &[u8],
    decode: impl Fn(&[u8]) -> Result<Decoded<T>, E>,
) -> Vec<T> {
    let mut consumed = 0;
    let mut out = Vec::new();
    while consumed < stream.len() {
        match decode(&stream[consumed..]).expect("valid stream never errors") {
            Decoded::Frame(item, used) => {
                out.push(item);
                consumed += used;
            }
            Decoded::NeedMore => panic!("whole valid stream must decode completely"),
        }
    }
    out
}

fn request_stream(batches: &[(bool, Vec<u32>)]) -> Vec<u8> {
    let mut stream = Vec::new();
    for (nearest, raw) in batches {
        let ips: Vec<Ipv4> = raw.iter().map(|&r| Ipv4(r)).collect();
        let opcode = if *nearest {
            Opcode::Nearest
        } else {
            Opcode::Locate
        };
        encode_request(&mut stream, opcode, &ips).expect("small batches always encode");
    }
    stream
}

fn response_stream(frames: &[(u8, Vec<u32>)]) -> Vec<u8> {
    let mut stream = Vec::new();
    for (kind, raw) in frames {
        match kind % 3 {
            0 => {
                let w = ResponseWriter::begin(&mut stream, Opcode::Locate);
                for &r in raw {
                    w.push_record(
                        &mut stream,
                        &proto::LocateRecord {
                            hit: r % 2 == 0,
                            prefix: Prefix24(r & 0x00FF_FFFF),
                            lat_bits: if r % 2 == 0 { u64::from(r) << 20 } else { 0 },
                            lon_bits: if r % 2 == 0 { u64::from(r) << 10 } else { 0 },
                            method: if r % 2 == 0 { (r % 5) as u8 } else { 0 },
                            distance: if r % 2 == 0 { r % 97 } else { 0 },
                            confidence_bits: 0,
                        },
                    );
                }
                w.finish(&mut stream);
            }
            1 => {
                let w = ResponseWriter::begin(&mut stream, Opcode::Stats);
                w.push_stats(
                    &mut stream,
                    &proto::StatsRecord {
                        entries: u64::from(raw.first().copied().unwrap_or(0)),
                        hits: raw.len() as u64,
                        misses: 3,
                        connections: 9,
                        generation: u64::from(raw.last().copied().unwrap_or(0)) + 1,
                        live: raw.len() as u64 + 1,
                        shed: 2,
                        evicted: 5,
                        proto_errors: 1,
                        reload_failed: 0,
                    },
                );
                w.finish(&mut stream);
            }
            _ => encode_error(&mut stream, Opcode::Locate, "synthetic refusal"),
        }
        // A miss record's hit byte must stay 0/1; the generator above
        // only emits valid records, mirroring the server's encoder.
    }
    stream
}

proptest! {
    /// Requests: every chunking — including pathological 1-byte reads —
    /// decodes the identical frame sequence.
    #[test]
    fn request_decode_is_chunking_invariant(
        batches in prop::collection::vec(
            (any::<bool>(), prop::collection::vec(any::<u32>(), 0..9)),
            1..7,
        ),
        chunks in prop::collection::vec(1usize..23, 1..12),
    ) {
        let stream = request_stream(&batches);
        let whole: Vec<Request> = decode_whole(&stream, try_decode_request);
        prop_assert_eq!(whole.len(), batches.len());
        let split = decode_in_chunks(&stream, &chunks, try_decode_request);
        prop_assert_eq!(&split, &whole);
        let byte_by_byte = decode_in_chunks(&stream, &[1], try_decode_request);
        prop_assert_eq!(&byte_by_byte, &whole);
    }

    /// Responses: a pipelined reply stream reassembles identically under
    /// arbitrary write splits, so a client (or the chaos harness's
    /// digest) can never observe the server's flush boundaries.
    #[test]
    fn response_reassembly_is_chunking_invariant(
        frames in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(any::<u32>(), 0..9)),
            1..7,
        ),
        chunks in prop::collection::vec(1usize..23, 1..12),
    ) {
        let stream = response_stream(&frames);
        let whole: Vec<Response> = decode_whole(&stream, try_decode_response);
        prop_assert_eq!(whole.len(), frames.len());
        let split = decode_in_chunks(&stream, &chunks, try_decode_response);
        prop_assert_eq!(&split, &whole);
        let byte_by_byte = decode_in_chunks(&stream, &[1], try_decode_response);
        prop_assert_eq!(&byte_by_byte, &whole);
    }

    /// A truncated tail never yields a frame the full stream would not:
    /// cutting the stream anywhere loses at most the unfinished suffix.
    #[test]
    fn truncation_is_a_clean_prefix_of_the_full_decode(
        batches in prop::collection::vec(
            (any::<bool>(), prop::collection::vec(any::<u32>(), 0..5)),
            1..5,
        ),
        cut in any::<u64>(),
    ) {
        let stream = request_stream(&batches);
        let whole: Vec<Request> = decode_whole(&stream, try_decode_request);
        let cut_at = (cut % stream.len() as u64) as usize;
        // Decode greedily from the truncated stream.
        let mut consumed = 0;
        let mut got = Vec::new();
        loop {
            match try_decode_request(&stream[consumed..cut_at]) {
                Ok(Decoded::Frame(req, used)) => { got.push(req); consumed += used; }
                Ok(Decoded::NeedMore) => break,
                Err(e) => { prop_assert!(false, "truncation errored: {e}"); break; }
            }
        }
        prop_assert!(got.len() <= whole.len());
        prop_assert_eq!(&got[..], &whole[..got.len()]);
    }
}
