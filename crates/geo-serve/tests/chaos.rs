//! The seeded chaos harness's acceptance contract (DESIGN.md §14):
//!
//! 1. **Equivalence under attack** — with ≥ 25 % of connections running
//!    seeded socket-level faults, every clean client's response byte
//!    stream is bit-identical to an unattacked run's.
//! 2. **Counters are a pure function of the seed** — two attacked runs
//!    with the same seed produce the same report, byte for byte; a
//!    different seed produces a different one.
//! 3. **Worker-count independence** — the report is identical at 1 and
//!    4 workers, because scheduling is outside the observable.
//!
//! The mid-stream reload, the shed phase (over-cap connections answered
//! `BUSY`), and the drain shutdown all run inside `chaos::run`, so every
//! test here also exercises those paths end to end.

use geo_model::ip::Prefix24;
use geo_model::point::GeoPoint;
use geo_model::rng::Seed;
use geo_serve::chaos::{self, ChaosConfig, ChaosPlan};
use geo_serve::DatasetStore;
use ipgeo::publish::{DatasetEntry, Evidence};
use std::sync::Arc;

fn store() -> Arc<DatasetStore> {
    let entries: Vec<DatasetEntry> = (0..64u32)
        .map(|i| DatasetEntry {
            prefix: Prefix24(i * 11 + 5),
            location: GeoPoint::new(f64::from(i % 170) - 85.0, f64::from(i % 350) - 175.0),
            evidence: match i % 3 {
                0 => Evidence::Geofeed,
                1 => Evidence::DnsHint {
                    hostname: format!("pop-{i}.example.net"),
                },
                _ => Evidence::Whois,
            },
        })
        .collect();
    Arc::new(DatasetStore::from_entries(&entries, 42, 1))
}

/// 6 chaos connections against 6 clean ones: half the fleet is hostile,
/// comfortably past the 25 % bar (seed 1903 draws all five behaviors at
/// this fleet size).
fn config(seed: u64, workers: usize) -> ChaosConfig {
    ChaosConfig {
        seed,
        clean_conns: 6,
        chaos_conns: 6,
        queries_per_conn: 10,
        workers,
        shed_cap: 4,
        shed_extra: 3,
    }
}

#[test]
fn clean_clients_read_identical_bytes_under_attack() {
    let store = store();
    let cfg = config(7, 2);
    let baseline = chaos::run(&store, &cfg, false).expect("baseline run");
    let attacked = chaos::run(&store, &cfg, true).expect("attacked run");
    assert_eq!(
        baseline.clean_digest, attacked.clean_digest,
        "chaos connections must be invisible in clean clients' bytes"
    );
    // The mid-stream reload swapped generations in both runs...
    assert_eq!((baseline.generation, attacked.generation), (2, 2));
    // ...and the baseline saw no chaos at all.
    assert_eq!(
        (
            baseline.evicted_idle,
            baseline.evicted_stalled,
            baseline.proto_errors
        ),
        (0, 0, 0)
    );
    // The attacked run disposed of every chaos connection as predicted.
    let predicted: usize = (0..cfg.chaos_conns)
        .filter(|&i| {
            !matches!(
                ChaosPlan::new(Seed(cfg.seed), i as u64).expected(),
                chaos::ExpectedOutcome::CleanAbort
            )
        })
        .count();
    assert_eq!(
        (attacked.evicted_idle + attacked.evicted_stalled + attacked.proto_errors) as usize,
        predicted
    );
    // Both runs shed exactly the over-cap connections.
    assert_eq!(baseline.shed, 3);
    assert_eq!(attacked.shed, 3);
}

#[test]
fn chaos_reports_are_pure_functions_of_the_seed() {
    let store = store();
    let cfg = config(1903, 2);
    let first = chaos::run(&store, &cfg, true).expect("first run");
    let second = chaos::run(&store, &cfg, true).expect("second run");
    assert_eq!(first, second, "same seed, same report, byte for byte");
    assert_eq!(first.lines(), second.lines());

    let other = chaos::run(&store, &config(7, 2), true).expect("other seed");
    assert_ne!(
        (first.clean_digest, first.chaos_digest),
        (other.clean_digest, other.chaos_digest),
        "different seeds must draw different schedules and workloads"
    );
}

#[test]
fn chaos_reports_are_independent_of_worker_count() {
    let store = store();
    let narrow = chaos::run(&store, &config(7, 1), true).expect("1-worker run");
    let wide = chaos::run(&store, &config(7, 4), true).expect("4-worker run");
    assert_eq!(
        narrow, wide,
        "scheduling must stay outside the observable: 1 worker and 4 \
         workers give the same digests and the same counters"
    );
}
