//! `ipgeo` — command-line interface to the replication framework.
//!
//! Generates a deterministic world and runs any of the replicated
//! geolocation techniques against it. See `ipgeo help`.

mod args;

use args::{parse, Cli, Command, Method, Methods, QuerySource, USAGE};
use atlas_sim::{FaultPlan, FaultProfile};
use geo_hints::{
    build_dataset_fused, fuse_sources, verify_against_region, CodeTable, FusedConfig, FusionInput,
};
use geo_model::ip::{Ipv4, Prefix24};
use geo_model::rng::Seed;
use geo_model::soi::SpeedOfInternet;
use geo_serve::{DatasetStore, DiffReport, Manifest, QueryServer};
use ipgeo::cbg::{cbg, shortest_ping, VpMeasurement};
use ipgeo::publish::{fused_sources, DatasetEntry};
use ipgeo::resilient::{CampaignReport, TargetLog};
use ipgeo::street::{geolocate_resilient as street_geolocate, StreetConfig};
use ipgeo::two_step::{geolocate_resilient as two_step_geolocate, greedy_coverage};
use ipgeo::Resilience;
use net_sim::Network;
use std::process::ExitCode;
use std::sync::Arc;
use web_sim::ecosystem::{WebConfig, WebEcosystem};
use world_sim::census::Census;
use world_sim::ids::HostId;
use world_sim::{World, WorldConfig};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&argv) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn build_world(cli: &Cli) -> Result<(World, Network), String> {
    let cfg = if cli.paper {
        WorldConfig::paper(Seed(cli.seed))
    } else {
        WorldConfig::small(Seed(cli.seed))
    };
    let world = World::generate(cfg)?;
    let net = Network::new(Seed(cli.seed));
    Ok((world, net))
}

fn clean_probes(world: &World) -> Vec<HostId> {
    world
        .probes
        .iter()
        .copied()
        .filter(|&p| !world.host(p).is_mis_geolocated())
        .collect()
}

/// The fault plan the CLI's `--fault-profile` selects, seeded from the
/// world seed so a given `(seed, profile)` pair replays bit-identically.
fn fault_plan(cli: &Cli) -> FaultPlan {
    FaultPlan::new(Seed(cli.seed), cli.fault_profile)
}

/// Prints the campaign report to stderr (stdout stays machine-readable
/// CSV / protocol output) when faults were actually injected.
fn report_faults(cli: &Cli, report: &CampaignReport) {
    if cli.fault_profile != FaultProfile::None {
        eprintln!("fault profile {} (seed {}):", cli.fault_profile, cli.seed);
        eprintln!("{report}");
    }
}

/// The shared producer behind `dataset` and `publish`: build the
/// explainable dataset over the anchors' prefixes with the CLI's
/// campaign knobs (`--nonce`, `--mesh`, `--methods`).
fn publish_dataset(cli: &Cli, world: &World) -> Result<Vec<DatasetEntry>, String> {
    let net = Network::new(Seed(cli.seed));
    let vps = clean_probes(world);
    if vps.is_empty() {
        return Err("no usable vantage points in this world".into());
    }
    let mesh = greedy_coverage(world, &vps, cli.mesh.min(vps.len()));
    let prefixes: Vec<Prefix24> = world
        .anchors
        .iter()
        .map(|&a| world.host(a).ip.prefix24())
        .collect();
    let plan = fault_plan(cli);
    let res = Resilience::with_plan(&plan);
    match cli.methods {
        Methods::Baseline => {
            let (ds, report) = ipgeo::publish::build_dataset_resilient(
                world, &net, &res, &mesh, &prefixes, cli.nonce,
            );
            report_faults(cli, &report);
            Ok(ds)
        }
        Methods::Fused => {
            let cfg = FusedConfig::new(cli.hint_coverage, cli.hint_truthfulness);
            let (ds, report) =
                build_dataset_fused(world, &net, &res, &mesh, &prefixes, cli.nonce, &cfg);
            // The fused report keeps baseline and hint-verification
            // probes in separate books so credit accounting stays
            // auditable under fault injection.
            if cli.fault_profile != FaultProfile::None {
                eprintln!("fault profile {} (seed {}):", cli.fault_profile, cli.seed);
                eprintln!("{report}");
            }
            Ok(ds)
        }
    }
}

fn run(cli: Cli) -> Result<(), String> {
    match cli.command.clone() {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Targets => {
            let (world, _) = build_world(&cli)?;
            println!("sample anchor targets (seed {}):", cli.seed);
            for &a in world.anchors.iter().take(15) {
                let h = world.host(a);
                println!(
                    "  {:<16} {} ({})",
                    h.ip.to_string(),
                    h.location,
                    world.city(h.city).name
                );
            }
            Ok(())
        }
        Command::Census => {
            let (world, _) = build_world(&cli)?;
            let c = Census::of(&world);
            println!(
                "world seed {} ({})",
                cli.seed,
                if cli.paper { "paper scale" } else { "small" }
            );
            println!(
                "cities {}  countries {}  ASes {}",
                c.total_cities, c.total_countries, c.total_ases
            );
            println!(
                "anchors {} (in {} cities, {} countries, {} ASes)  probes {}",
                c.anchors, c.anchor_cities, c.anchor_countries, c.anchor_ases, c.probes
            );
            for (i, cont) in world_sim::continent::Continent::ALL.iter().enumerate() {
                if c.anchors_per_continent[i] > 0 {
                    println!("  {}: {} anchors", cont.code(), c.anchors_per_continent[i]);
                }
            }
            Ok(())
        }
        Command::Sanitize => {
            let (world, net) = build_world(&cli)?;
            let mut platform = atlas_sim::Platform::new(atlas_sim::CreditAccount::upgraded());
            let mesh = platform
                .anchor_mesh(&world, &net, &world.anchors)
                .map_err(|e| e.to_string())?;
            let report =
                ipgeo::sanitize_anchors(&world, &world.anchors, &mesh, SpeedOfInternet::CBG);
            println!(
                "anchors: kept {}, removed {} ({} iterations)",
                report.kept.len(),
                report.removed.len(),
                report.iterations
            );
            for id in &report.removed {
                let h = world.host(*id);
                println!(
                    "  removed {} at {} (claimed {})",
                    h.ip, h.location, h.registered_location
                );
            }
            println!(
                "credits spent: {}  virtual time: {:.0}s",
                platform.credits().spent(),
                platform.clock().now_secs()
            );
            Ok(())
        }
        Command::Dataset => {
            let (world, _) = build_world(&cli)?;
            let ds = publish_dataset(&cli, &world)?;
            print!("{}", ipgeo::publish::to_csv(&ds));
            Ok(())
        }
        Command::Publish { out } => {
            let (world, _) = build_world(&cli)?;
            let ds = publish_dataset(&cli, &world)?;
            let header = geo_serve::format::save(&out, &ds, cli.seed, cli.nonce)
                .map_err(|e| e.to_string())?;
            let store = DatasetStore::open(&out).map_err(|e| e.to_string())?;
            println!(
                "wrote {out}: {} entries, checksum {:016x}",
                header.entries, header.checksum
            );
            print!("{}", Manifest::with_accuracy(&store, &world));
            Ok(())
        }
        Command::Query {
            source,
            ip,
            nearest,
            binary,
        } => {
            match source {
                QuerySource::Server(addr) if binary => {
                    let target: Ipv4 = ip.parse().map_err(|e| format!("{e}"))?;
                    let opcode = if nearest {
                        geo_serve::Opcode::Nearest
                    } else {
                        geo_serve::Opcode::Locate
                    };
                    let mut client = geo_serve::BinaryClient::connect(&addr)
                        .map_err(|e| format!("{addr}: {e}"))?;
                    let response = client
                        .query(opcode, &[target])
                        .map_err(|e| format!("{addr}: {e}"))?;
                    match response {
                        geo_serve::Response::Records { records, .. } => {
                            let Some(rec) = records.first() else {
                                return Err(format!("{addr}: empty response batch"));
                            };
                            if !rec.hit {
                                println!("MISS {target}");
                                return Err(format!("server answered: MISS {target}"));
                            }
                            // Binary records carry the compact answer
                            // (the evidence trail stays on the line
                            // protocol and the snapshot itself).
                            println!(
                                "OK {}/24,{:.4},{:.4},method={} distance={}",
                                Ipv4(rec.prefix.0 << 8),
                                rec.lat(),
                                rec.lon(),
                                rec.method,
                                rec.distance
                            );
                        }
                        geo_serve::Response::Error(msg) => {
                            return Err(format!("server answered: ERR {msg}"))
                        }
                        geo_serve::Response::Stats(_) => {
                            return Err(format!("{addr}: unexpected STATS response"))
                        }
                        geo_serve::Response::Busy => {
                            return Err(format!(
                                "{addr}: server is at its connection cap (BUSY); retry shortly"
                            ))
                        }
                    }
                }
                QuerySource::Server(addr) => {
                    let verb = if nearest { "NEAREST" } else { "LOCATE" };
                    let reply = geo_serve::query_one(&addr, &format!("{verb} {ip}"))
                        .map_err(|e| format!("{addr}: {e}"))?;
                    println!("{reply}");
                    if !reply.starts_with("OK") {
                        return Err(format!("server answered: {reply}"));
                    }
                }
                QuerySource::File(path) => {
                    let store = DatasetStore::open(&path).map_err(|e| e.to_string())?;
                    let target: Ipv4 = ip.parse().map_err(|e| format!("{e}"))?;
                    println!("prefix,lat,lon,method,evidence");
                    match (store.lookup(target), nearest) {
                        (Some(entry), _) => println!("{entry}"),
                        (None, true) => {
                            let (entry, dist) = store
                                .lookup_nearest(target)
                                .ok_or_else(|| format!("{path} is empty"))?;
                            println!("{entry}");
                            eprintln!("note: nearest covering prefix, {dist} x /24 away");
                        }
                        (None, false) => {
                            return Err(format!(
                                "{target} has no covering /24 in {path} \
                                 (try --nearest for the closest prefix)"
                            ))
                        }
                    }
                }
            }
            Ok(())
        }
        Command::Serve { path, port } => {
            let store = Arc::new(DatasetStore::open(&path).map_err(|e| e.to_string())?);
            let config = geo_serve::ServeConfig {
                // The served file is also the RELOAD source: an admin
                // `RELOAD` re-reads it and swaps generations live.
                snapshot_path: Some(std::path::PathBuf::from(&path)),
                ..geo_serve::ServeConfig::default()
            };
            let server = QueryServer::spawn_with_config(store.clone(), port, config)
                .map_err(|e| e.to_string())?;
            println!(
                "serving {} entries from {path} on {} (world seed {}, nonce {})",
                store.len(),
                server.addr(),
                store.header().world_seed,
                store.header().nonce
            );
            use std::io::Write;
            let _ = std::io::stdout().flush();
            server.wait();
            Ok(())
        }
        Command::Diff { old, new } => {
            let old_store = DatasetStore::open(&old).map_err(|e| format!("{old}: {e}"))?;
            let new_store = DatasetStore::open(&new).map_err(|e| format!("{new}: {e}"))?;
            println!(
                "old: {old} (seed {}, {} entries)  new: {new} (seed {}, {} entries)",
                old_store.header().world_seed,
                old_store.len(),
                new_store.header().world_seed,
                new_store.len()
            );
            print!("{}", DiffReport::between(&old_store, &new_store));
            Ok(())
        }
        Command::Locate { ip, method } => {
            let (mut world, net) = build_world(&cli)?;
            let target: Ipv4 = ip.parse().map_err(|e| format!("{e}"))?;
            let Some(host) = world.host_by_ip(target).cloned() else {
                return Err(format!(
                    "{target} is not a responsive address in this world \
                     (try an anchor address from `ipgeo census`-scale worlds, \
                     e.g. 1.17.94.1 with --paper or 1.0.94.1 without)"
                ));
            };
            let vps = clean_probes(&world);
            let plan = fault_plan(&cli);
            let res = Resilience::with_plan(&plan);
            let mut log = TargetLog::default();

            let (estimate, label) = match method {
                Method::Cbg | Method::ShortestPing | Method::Fused => {
                    let ms: Vec<VpMeasurement> = ipgeo::resilient::ping_batch(
                        &world, &net, &res, &vps, target, 3, 1, &mut log,
                    )
                    .into_iter()
                    .filter_map(|(vp, outcome)| {
                        outcome.rtt().map(|rtt| VpMeasurement {
                            vp,
                            location: world.host(vp).registered_location,
                            rtt,
                        })
                    })
                    .collect();
                    match method {
                        Method::Cbg => {
                            let r = cbg(&ms, SpeedOfInternet::CBG).ok_or("CBG region is empty")?;
                            (r.estimate, "CBG (all probes)")
                        }
                        Method::Fused => {
                            let r = cbg(&ms, SpeedOfInternet::CBG).ok_or("CBG region is empty")?;
                            let cfg = world_sim::rdns::RdnsConfig::new(
                                cli.hint_coverage,
                                cli.hint_truthfulness,
                            );
                            let table = CodeTable::build(&world);
                            let name = world_sim::rdns::hostname(&world, &cfg, host.id);
                            let hint = name.as_ref().and_then(|n| {
                                let candidates = table.extract(&n.name);
                                verify_against_region(&world, &r, &n.name, &candidates)
                            });
                            let fused = fuse_sources(&FusionInput {
                                cbg: &r,
                                hint: hint.as_ref(),
                                street: None,
                                db: None,
                            });
                            match (&name, &hint) {
                                (Some(n), Some(_)) => {
                                    println!("rdns     {} (hint verified)", n.name);
                                }
                                (Some(n), None) => {
                                    println!("rdns     {} (hint refuted or absent)", n.name);
                                }
                                (None, _) => println!("rdns     none published"),
                            }
                            println!(
                                "fused    sources {}  confidence {:.2}",
                                fused_sources::label(fused.sources),
                                fused.confidence
                            );
                            (fused.location, "fused (CBG + verified rDNS hints)")
                        }
                        _ => {
                            let best = shortest_ping(&ms).ok_or("no measurements")?;
                            (best.location, "shortest ping")
                        }
                    }
                }
                Method::TwoStep => {
                    let coverage = greedy_coverage(&world, &vps, 50.min(vps.len()));
                    let out = two_step_geolocate(
                        &world, &net, &res, &coverage, &vps, target, 1, &mut log,
                    );
                    let r = out.cbg.ok_or(
                        "two-step selection failed: the target's /24 has no \
                         responsive representatives (the VP selection needs the \
                         hitlist, §3.1 — try an address from `ipgeo targets`)",
                    )?;
                    println!(
                        "two-step: {} measurements, {} step-2 candidates",
                        out.measurements, out.step2_candidates
                    );
                    (r.estimate, "two-step selection")
                }
                Method::Street => {
                    let eco = WebEcosystem::generate(&mut world, &WebConfig::default())?;
                    let anchors: Vec<HostId> = world
                        .anchors
                        .iter()
                        .copied()
                        .filter(|&a| {
                            world.host(a).ip != target && !world.host(a).is_mis_geolocated()
                        })
                        .collect();
                    let out = street_geolocate(
                        &world,
                        &net,
                        &eco,
                        &res,
                        &anchors,
                        host.id,
                        &StreetConfig::default(),
                        1,
                        &mut log,
                    );
                    println!(
                        "street level: {} landmarks, {} mapping queries, {:.0}s virtual time",
                        out.landmarks.len(),
                        out.mapping_queries,
                        out.virtual_secs
                    );
                    (
                        out.estimate.ok_or("street-level pipeline failed")?,
                        "street level",
                    )
                }
            };

            println!("target   {} (true location {})", target, host.location);
            println!("estimate {} via {}", estimate, label);
            println!(
                "error    {:.1} km",
                estimate.distance(&host.location).value()
            );
            let mut report = CampaignReport::default();
            report.absorb(&log);
            report_faults(&cli, &report);
            Ok(())
        }
    }
}
