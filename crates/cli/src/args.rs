//! Minimal argument parsing for the `ipgeo` CLI (no external parser: a
//! handful of subcommands and flags).

use atlas_sim::FaultProfile;
use std::fmt;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to run.
    pub command: Command,
    /// World seed (`--seed N`, default 2023).
    pub seed: u64,
    /// Use the paper-scale world (`--paper`) instead of the small one.
    pub paper: bool,
    /// Measurement nonce for dataset campaigns (`--nonce N`, default 1).
    pub nonce: u64,
    /// Coverage-mesh size for dataset campaigns (`--mesh N`, default 300).
    pub mesh: usize,
    /// Injected platform faults (`--fault-profile none|flaky|hostile`,
    /// default none).
    pub fault_profile: FaultProfile,
    /// Evidence tier for dataset campaigns (`--methods baseline|fused`,
    /// default baseline).
    pub methods: Methods,
    /// Fraction of hosts publishing rDNS names (`--hint-coverage`,
    /// default 0.6; fused tier only).
    pub hint_coverage: f64,
    /// Fraction of published names that are truthful
    /// (`--hint-truthfulness`, default 0.9; fused tier only).
    pub hint_truthfulness: f64,
}

/// The evidence tier `dataset`/`publish` build with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Methods {
    /// The legacy single-source evidence ladder.
    Baseline,
    /// The fused tier: CBG fused with latency-verified rDNS hints and
    /// the commercial-DB prior, with per-entry confidence.
    Fused,
}

impl Methods {
    fn parse(s: &str) -> Result<Methods, ParseError> {
        match s {
            "baseline" => Ok(Methods::Baseline),
            "fused" => Ok(Methods::Fused),
            other => Err(ParseError(format!(
                "unknown method tier `{other}` (expected baseline|fused)"
            ))),
        }
    }
}

/// Where `query` resolves lookups: a local snapshot or a running server.
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySource {
    /// A `.igds` snapshot on disk.
    File(String),
    /// A `host:port` of a running `ipgeo serve`.
    Server(String),
}

/// The CLI subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print the world census (Tables 1/2 style).
    Census,
    /// List a sample of anchor targets (addresses `locate` can use).
    Targets,
    /// Geolocate an address: `locate <ip> [--method m]`.
    Locate {
        /// Target address (dotted quad).
        ip: String,
        /// Technique to use.
        method: Method,
    },
    /// Emit the explainable geolocation dataset as CSV.
    Dataset,
    /// Build the dataset and write it as a `.igds` snapshot.
    Publish {
        /// Output path (`--out`).
        out: String,
    },
    /// Look an address up in a snapshot or against a running server.
    Query {
        /// Snapshot file or server address.
        source: QuerySource,
        /// Address to look up.
        ip: String,
        /// Fall back to the nearest covering prefix (`--nearest`).
        nearest: bool,
        /// Use the binary pipelined protocol (`--binary`, server only).
        binary: bool,
    },
    /// Serve a snapshot over TCP: `serve <file.igds> [--port N]`.
    Serve {
        /// Snapshot to serve.
        path: String,
        /// TCP port on 127.0.0.1 (0 = OS-assigned).
        port: u16,
    },
    /// Compare two snapshots: `diff <old.igds> <new.igds>`.
    Diff {
        /// The older snapshot.
        old: String,
        /// The newer snapshot.
        new: String,
    },
    /// Run the §4.3 sanitization and report removals.
    Sanitize,
    /// Print usage.
    Help,
}

/// Geolocation techniques selectable from the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Constraint-Based Geolocation over all probes.
    Cbg,
    /// Shortest Ping over all probes.
    ShortestPing,
    /// The two-step VP selection.
    TwoStep,
    /// The street-level three-tier technique.
    Street,
    /// CBG fused with a latency-verified rDNS hint.
    Fused,
}

impl Method {
    fn parse(s: &str) -> Result<Method, ParseError> {
        match s {
            "cbg" => Ok(Method::Cbg),
            "shortest-ping" => Ok(Method::ShortestPing),
            "two-step" => Ok(Method::TwoStep),
            "street" => Ok(Method::Street),
            "fused" => Ok(Method::Fused),
            other => Err(ParseError(format!(
                "unknown method `{other}` (expected cbg|shortest-ping|two-step|street|fused)"
            ))),
        }
    }
}

/// A CLI parse error with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Usage text.
pub const USAGE: &str = "\
ipgeo — IP geolocation over a simulated measurement ecosystem

USAGE:
    ipgeo <COMMAND> [OPTIONS]

COMMANDS:
    census                  world census (targets, VPs, AS categories)
    targets                 list sample anchor addresses for `locate`
    locate <ip>             geolocate an address of the generated world
    dataset                 print the explainable geolocation dataset (CSV)
    publish --out <file>    build the dataset and write a .igds snapshot
    query <file> <ip>       look an address up in a .igds snapshot
    query --server <addr> <ip>
                            ask a running `ipgeo serve` instead
    serve <file>            serve a .igds snapshot over TCP (text line
                            protocol and the binary pipelined protocol
                            on the same port)
    diff <old> <new>        compare two .igds snapshots (churn report)
    sanitize                run the speed-of-Internet sanitizer
    help                    show this text

OPTIONS:
    --seed <N>              world seed (default 2023)
    --paper                 paper-scale world (723 anchors, 10k probes)
    --method <M>            locate only: cbg|shortest-ping|two-step|street
                            |fused (default cbg)
    --methods <T>           dataset/publish: evidence tier, baseline|fused
                            (default baseline; fused adds latency-verified
                            rDNS hints and the commercial-DB prior, and
                            stamps every latency entry with a confidence)
    --hint-coverage <F>     fused tier: fraction of hosts publishing rDNS
                            names, clamped to 0..1 (default 0.6)
    --hint-truthfulness <F> fused tier: fraction of published names that
                            are truthful, clamped to 0..1 (default 0.9)
    --nonce <N>             dataset/publish: measurement nonce mixed into
                            every ping of the campaign (default 1)
    --mesh <N>              dataset/publish: coverage-mesh size, the number
                            of vantage points kept by the greedy earth
                            cover (default 300)
    --out <FILE>            publish: output .igds path (required)
    --port <N>              serve: TCP port on 127.0.0.1, 0 = OS-assigned
                            (default 4750)
    --server <ADDR>         query: host:port of a running server
    --nearest               query: fall back to the nearest covering
                            prefix on a miss
    --binary                query --server: speak the binary pipelined
                            protocol instead of the text line protocol
    --fault-profile <P>     locate/dataset/publish: inject deterministic
                            platform faults and run the resilient campaign
                            executor: none|flaky|hostile (default none)
";

/// Parses argv (without the program name).
pub fn parse(args: &[String]) -> Result<Cli, ParseError> {
    let mut seed = 2023u64;
    let mut paper = false;
    let mut method = Method::Cbg;
    let mut nonce = 1u64;
    let mut mesh = 300usize;
    let mut fault_profile = FaultProfile::None;
    let mut methods = Methods::Baseline;
    let mut hint_coverage = 0.6f64;
    let mut hint_truthfulness = 0.9f64;
    let mut out: Option<String> = None;
    let mut port = 4750u16;
    let mut server: Option<String> = None;
    let mut nearest = false;
    let mut binary = false;
    let mut positional: Vec<&str> = Vec::new();

    fn value<'a>(args: &'a [String], i: usize, flag: &str) -> Result<&'a str, ParseError> {
        args.get(i)
            .map(String::as_str)
            .ok_or_else(|| ParseError(format!("{flag} needs a value")))
    }

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                let v = value(args, i, "--seed")?;
                seed = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad seed `{v}`")))?;
            }
            "--paper" => paper = true,
            "--method" => {
                i += 1;
                method = Method::parse(value(args, i, "--method")?)?;
            }
            "--nonce" => {
                i += 1;
                let v = value(args, i, "--nonce")?;
                nonce = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad nonce `{v}`")))?;
            }
            "--mesh" => {
                i += 1;
                let v = value(args, i, "--mesh")?;
                mesh = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad mesh size `{v}`")))?;
            }
            "--out" => {
                i += 1;
                out = Some(value(args, i, "--out")?.to_string());
            }
            "--port" => {
                i += 1;
                let v = value(args, i, "--port")?;
                port = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad port `{v}`")))?;
            }
            "--server" => {
                i += 1;
                server = Some(value(args, i, "--server")?.to_string());
            }
            "--nearest" => nearest = true,
            "--binary" => binary = true,
            "--fault-profile" => {
                i += 1;
                fault_profile =
                    FaultProfile::parse(value(args, i, "--fault-profile")?).map_err(ParseError)?;
            }
            "--methods" => {
                i += 1;
                methods = Methods::parse(value(args, i, "--methods")?)?;
            }
            "--hint-coverage" => {
                i += 1;
                let v = value(args, i, "--hint-coverage")?;
                hint_coverage = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad hint coverage `{v}`")))?;
            }
            "--hint-truthfulness" => {
                i += 1;
                let v = value(args, i, "--hint-truthfulness")?;
                hint_truthfulness = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad hint truthfulness `{v}`")))?;
            }
            flag if flag.starts_with("--") => {
                return Err(ParseError(format!("unknown flag `{flag}`")));
            }
            word => positional.push(word),
        }
        i += 1;
    }

    let command = match positional.first().copied() {
        None | Some("help") => {
            if positional.is_empty() && args.iter().any(|a| a == "--seed" || a == "--paper") {
                return Err(ParseError("missing command".into()));
            }
            Command::Help
        }
        Some("census") => Command::Census,
        Some("targets") => Command::Targets,
        Some("dataset") => Command::Dataset,
        Some("sanitize") => Command::Sanitize,
        Some("publish") => Command::Publish {
            out: out.ok_or_else(|| ParseError("publish needs --out <file>".into()))?,
        },
        Some("query") => {
            let (source, ip) = match (&server, positional.get(1), positional.get(2)) {
                (Some(addr), Some(ip), None) => (QuerySource::Server(addr.clone()), *ip),
                (Some(_), _, _) => {
                    return Err(ParseError(
                        "query --server <addr> takes exactly one <ip>".into(),
                    ))
                }
                (None, Some(file), Some(ip)) => (QuerySource::File(file.to_string()), *ip),
                (None, _, _) => {
                    return Err(ParseError(
                        "query needs <file.igds> <ip> (or --server <addr> <ip>)".into(),
                    ))
                }
            };
            if binary && !matches!(source, QuerySource::Server(_)) {
                return Err(ParseError(
                    "--binary only applies to query --server <addr>".into(),
                ));
            }
            Command::Query {
                source,
                ip: ip.to_string(),
                nearest,
                binary,
            }
        }
        Some("serve") => Command::Serve {
            path: positional
                .get(1)
                .ok_or_else(|| ParseError("serve needs a <file.igds> argument".into()))?
                .to_string(),
            port,
        },
        Some("diff") => Command::Diff {
            old: positional
                .get(1)
                .ok_or_else(|| ParseError("diff needs <old.igds> <new.igds>".into()))?
                .to_string(),
            new: positional
                .get(2)
                .ok_or_else(|| ParseError("diff needs <old.igds> <new.igds>".into()))?
                .to_string(),
        },
        Some("locate") => {
            let ip = positional
                .get(1)
                .ok_or_else(|| ParseError("locate needs an <ip> argument".into()))?;
            Command::Locate {
                ip: ip.to_string(),
                method,
            }
        }
        Some(other) => return Err(ParseError(format!("unknown command `{other}`"))),
    };

    Ok(Cli {
        command,
        seed,
        paper,
        nonce,
        mesh,
        fault_profile,
        methods,
        hint_coverage,
        hint_truthfulness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_census_with_flags() {
        let cli = parse(&argv("census --seed 7 --paper")).unwrap();
        assert_eq!(cli.command, Command::Census);
        assert_eq!(cli.seed, 7);
        assert!(cli.paper);
    }

    #[test]
    fn parses_locate_with_method() {
        let cli = parse(&argv("locate 1.0.42.1 --method street")).unwrap();
        match cli.command {
            Command::Locate { ip, method } => {
                assert_eq!(ip, "1.0.42.1");
                assert_eq!(method, Method::Street);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn defaults() {
        let cli = parse(&argv("dataset")).unwrap();
        assert_eq!(cli.seed, 2023);
        assert!(!cli.paper);
        assert_eq!(cli.nonce, 1);
        assert_eq!(cli.mesh, 300);
        assert_eq!(cli.fault_profile, FaultProfile::None);
        assert_eq!(cli.methods, Methods::Baseline);
        assert_eq!(cli.hint_coverage, 0.6);
        assert_eq!(cli.hint_truthfulness, 0.9);
    }

    #[test]
    fn parses_fused_tier_and_hint_knobs() {
        let cli = parse(&argv(
            "publish --out ds.igds --methods fused --hint-coverage 0.8 --hint-truthfulness 0.5",
        ))
        .unwrap();
        assert_eq!(cli.methods, Methods::Fused);
        assert_eq!(cli.hint_coverage, 0.8);
        assert_eq!(cli.hint_truthfulness, 0.5);
        assert_eq!(
            parse(&argv("dataset --methods baseline")).unwrap().methods,
            Methods::Baseline
        );
        assert!(parse(&argv("dataset --methods census")).is_err());
        assert!(parse(&argv("dataset --hint-coverage lots")).is_err());
        assert!(parse(&argv("dataset --hint-truthfulness")).is_err());
    }

    #[test]
    fn parses_locate_fused() {
        let cli = parse(&argv("locate 1.0.42.1 --method fused")).unwrap();
        match cli.command {
            Command::Locate { method, .. } => assert_eq!(method, Method::Fused),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_fault_profile() {
        let cli = parse(&argv("dataset --fault-profile flaky")).unwrap();
        assert_eq!(cli.fault_profile, FaultProfile::Flaky);
        let cli = parse(&argv("locate 1.0.42.1 --fault-profile hostile")).unwrap();
        assert_eq!(cli.fault_profile, FaultProfile::Hostile);
        assert!(parse(&argv("dataset --fault-profile chaotic")).is_err());
        assert!(parse(&argv("dataset --fault-profile")).is_err());
    }

    #[test]
    fn dataset_campaign_knobs_are_flags() {
        let cli = parse(&argv("dataset --nonce 9 --mesh 150")).unwrap();
        assert_eq!(cli.command, Command::Dataset);
        assert_eq!(cli.nonce, 9);
        assert_eq!(cli.mesh, 150);
    }

    #[test]
    fn parses_publish() {
        let cli = parse(&argv("publish --out ds.igds --seed 42")).unwrap();
        assert_eq!(
            cli.command,
            Command::Publish {
                out: "ds.igds".into()
            }
        );
        assert_eq!(cli.seed, 42);
        assert!(parse(&argv("publish")).is_err(), "--out is required");
    }

    #[test]
    fn parses_query_file_and_server() {
        let cli = parse(&argv("query ds.igds 1.0.94.1 --nearest")).unwrap();
        assert_eq!(
            cli.command,
            Command::Query {
                source: QuerySource::File("ds.igds".into()),
                ip: "1.0.94.1".into(),
                nearest: true,
                binary: false,
            }
        );
        let cli = parse(&argv("query --server 127.0.0.1:4750 1.0.94.1")).unwrap();
        assert_eq!(
            cli.command,
            Command::Query {
                source: QuerySource::Server("127.0.0.1:4750".into()),
                ip: "1.0.94.1".into(),
                nearest: false,
                binary: false,
            }
        );
        assert!(parse(&argv("query ds.igds")).is_err());
        assert!(parse(&argv("query --server 127.0.0.1:4750 a.igds 1.2.3.4")).is_err());
    }

    #[test]
    fn parses_query_binary() {
        let cli = parse(&argv(
            "query --server 127.0.0.1:4750 1.0.94.1 --binary --nearest",
        ))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Query {
                source: QuerySource::Server("127.0.0.1:4750".into()),
                ip: "1.0.94.1".into(),
                nearest: true,
                binary: true,
            }
        );
        // The binary protocol is a wire protocol; a snapshot file query
        // has no wire to speak it on.
        assert!(parse(&argv("query ds.igds 1.0.94.1 --binary")).is_err());
    }

    #[test]
    fn parses_serve_and_diff() {
        let cli = parse(&argv("serve ds.igds --port 9999")).unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                path: "ds.igds".into(),
                port: 9999,
            }
        );
        assert_eq!(
            parse(&argv("serve ds.igds")).unwrap().command,
            Command::Serve {
                path: "ds.igds".into(),
                port: 4750,
            }
        );
        assert_eq!(
            parse(&argv("diff a.igds b.igds")).unwrap().command,
            Command::Diff {
                old: "a.igds".into(),
                new: "b.igds".into(),
            }
        );
        assert!(parse(&argv("serve")).is_err());
        assert!(parse(&argv("diff a.igds")).is_err());
    }

    #[test]
    fn rejects_unknowns() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("census --wat")).is_err());
        assert!(parse(&argv("locate")).is_err());
        assert!(parse(&argv("locate 1.2.3.4 --method teleport")).is_err());
        assert!(parse(&argv("census --seed")).is_err());
        assert!(parse(&argv("census --seed abc")).is_err());
        assert!(parse(&argv("dataset --nonce abc")).is_err());
        assert!(parse(&argv("dataset --mesh -3")).is_err());
        assert!(parse(&argv("serve ds.igds --port 70000")).is_err());
    }

    #[test]
    fn parses_targets() {
        assert_eq!(parse(&argv("targets")).unwrap().command, Command::Targets);
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
        assert_eq!(parse(&argv("help")).unwrap().command, Command::Help);
    }
}
