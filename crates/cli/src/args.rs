//! Minimal argument parsing for the `ipgeo` CLI (no external parser: four
//! subcommands and a handful of flags).

use std::fmt;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to run.
    pub command: Command,
    /// World seed (`--seed N`, default 2023).
    pub seed: u64,
    /// Use the paper-scale world (`--paper`) instead of the small one.
    pub paper: bool,
}

/// The CLI subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print the world census (Tables 1/2 style).
    Census,
    /// List a sample of anchor targets (addresses `locate` can use).
    Targets,
    /// Geolocate an address: `locate <ip> [--method m]`.
    Locate {
        /// Target address (dotted quad).
        ip: String,
        /// Technique to use.
        method: Method,
    },
    /// Emit the explainable geolocation dataset as CSV.
    Dataset,
    /// Run the §4.3 sanitization and report removals.
    Sanitize,
    /// Print usage.
    Help,
}

/// Geolocation techniques selectable from the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Constraint-Based Geolocation over all probes.
    Cbg,
    /// Shortest Ping over all probes.
    ShortestPing,
    /// The two-step VP selection.
    TwoStep,
    /// The street-level three-tier technique.
    Street,
}

impl Method {
    fn parse(s: &str) -> Result<Method, ParseError> {
        match s {
            "cbg" => Ok(Method::Cbg),
            "shortest-ping" => Ok(Method::ShortestPing),
            "two-step" => Ok(Method::TwoStep),
            "street" => Ok(Method::Street),
            other => Err(ParseError(format!(
                "unknown method `{other}` (expected cbg|shortest-ping|two-step|street)"
            ))),
        }
    }
}

/// A CLI parse error with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Usage text.
pub const USAGE: &str = "\
ipgeo — IP geolocation over a simulated measurement ecosystem

USAGE:
    ipgeo <COMMAND> [OPTIONS]

COMMANDS:
    census                  world census (targets, VPs, AS categories)
    targets                 list sample anchor addresses for `locate`
    locate <ip>             geolocate an address of the generated world
    dataset                 print the explainable geolocation dataset (CSV)
    sanitize                run the speed-of-Internet sanitizer
    help                    show this text

OPTIONS:
    --seed <N>              world seed (default 2023)
    --paper                 paper-scale world (723 anchors, 10k probes)
    --method <M>            locate only: cbg|shortest-ping|two-step|street
                            (default cbg)
";

/// Parses argv (without the program name).
pub fn parse(args: &[String]) -> Result<Cli, ParseError> {
    let mut seed = 2023u64;
    let mut paper = false;
    let mut method = Method::Cbg;
    let mut positional: Vec<&str> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| ParseError("--seed needs a value".into()))?;
                seed = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad seed `{v}`")))?;
            }
            "--paper" => paper = true,
            "--method" => {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| ParseError("--method needs a value".into()))?;
                method = Method::parse(v)?;
            }
            flag if flag.starts_with("--") => {
                return Err(ParseError(format!("unknown flag `{flag}`")));
            }
            word => positional.push(word),
        }
        i += 1;
    }

    let command = match positional.first().copied() {
        None | Some("help") => {
            if positional.is_empty() && args.iter().any(|a| a == "--seed" || a == "--paper") {
                return Err(ParseError("missing command".into()));
            }
            Command::Help
        }
        Some("census") => Command::Census,
        Some("targets") => Command::Targets,
        Some("dataset") => Command::Dataset,
        Some("sanitize") => Command::Sanitize,
        Some("locate") => {
            let ip = positional
                .get(1)
                .ok_or_else(|| ParseError("locate needs an <ip> argument".into()))?;
            Command::Locate {
                ip: ip.to_string(),
                method,
            }
        }
        Some(other) => return Err(ParseError(format!("unknown command `{other}`"))),
    };

    Ok(Cli {
        command,
        seed,
        paper,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_census_with_flags() {
        let cli = parse(&argv("census --seed 7 --paper")).unwrap();
        assert_eq!(cli.command, Command::Census);
        assert_eq!(cli.seed, 7);
        assert!(cli.paper);
    }

    #[test]
    fn parses_locate_with_method() {
        let cli = parse(&argv("locate 1.0.42.1 --method street")).unwrap();
        match cli.command {
            Command::Locate { ip, method } => {
                assert_eq!(ip, "1.0.42.1");
                assert_eq!(method, Method::Street);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn defaults() {
        let cli = parse(&argv("dataset")).unwrap();
        assert_eq!(cli.seed, 2023);
        assert!(!cli.paper);
    }

    #[test]
    fn rejects_unknowns() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("census --wat")).is_err());
        assert!(parse(&argv("locate")).is_err());
        assert!(parse(&argv("locate 1.2.3.4 --method teleport")).is_err());
        assert!(parse(&argv("census --seed")).is_err());
        assert!(parse(&argv("census --seed abc")).is_err());
    }

    #[test]
    fn parses_targets() {
        assert_eq!(parse(&argv("targets")).unwrap().command, Command::Targets);
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
        assert_eq!(parse(&argv("help")).unwrap().command, Command::Help);
    }
}
