//! The determinism contract of the parallel measurement engine: every
//! campaign cell is a pure function of (seed, src, dst, nonce), so the
//! thread count must never leak into the output, and the base-delay cache
//! must be a transparent memoization of the uncached path.

use eval::dataset::{Dataset, EvalScale, RttMatrix};
use geo_model::rng::Seed;
use net_sim::Network;
use proptest::prelude::*;
use std::sync::Mutex;
use world_sim::{World, WorldConfig};

/// `IPGEO_THREADS` is process-global; tests that flip it must not
/// interleave.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Every cell of a matrix as raw bits, row-major. Bit comparison (rather
/// than `==`) keeps NaN timeout cells comparable.
fn matrix_bits(m: &RttMatrix) -> Vec<u32> {
    (0..m.rows())
        .flat_map(|r| m.row(r).iter().map(|c| c.to_bits()))
        .collect()
}

fn dataset_bits(scale: EvalScale) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let d = Dataset::load(scale);
    let rep = matrix_bits(d.rep_rtt());
    (matrix_bits(&d.rtt), matrix_bits(&d.anchor_rtt), rep)
}

/// Tentpole acceptance: a Dataset built serially and one built with four
/// workers carry byte-identical RTT matrices (mesh, probe matrix, and the
/// lazy representative campaign).
#[test]
fn dataset_is_bit_identical_across_thread_counts() {
    let _env = ENV_LOCK.lock().unwrap();
    let scale = || EvalScale::tiny(Seed(977));
    std::env::set_var("IPGEO_THREADS", "1");
    assert_eq!(geo_model::runtime::threads(), 1);
    let serial = dataset_bits(scale());
    std::env::set_var("IPGEO_THREADS", "4");
    assert_eq!(geo_model::runtime::threads(), 4);
    let parallel = dataset_bits(scale());
    std::env::remove_var("IPGEO_THREADS");
    assert_eq!(serial.0, parallel.0, "probe matrix differs");
    assert_eq!(serial.1, parallel.1, "anchor mesh differs");
    assert_eq!(serial.2, parallel.2, "representative matrix differs");
}

/// The published dataset is a campaign too: `publish::build_dataset` fans
/// out over the same engine, so its entries — locations bit-for-bit, full
/// evidence trail, and the serialized CSV — must not depend on the worker
/// count.
#[test]
fn published_dataset_is_bit_identical_across_thread_counts() {
    let _env = ENV_LOCK.lock().unwrap();
    let build = || {
        let world = World::generate(WorldConfig::small(Seed(351))).unwrap();
        let net = Network::new(Seed(351));
        let vps: Vec<_> = world
            .probes
            .iter()
            .copied()
            .filter(|&p| !world.host(p).is_mis_geolocated())
            .collect();
        let prefixes: Vec<_> = world
            .anchors
            .iter()
            .map(|&a| world.host(a).ip.prefix24())
            .collect();
        ipgeo::publish::build_dataset(&world, &net, &vps, &prefixes, 1)
    };
    std::env::set_var("IPGEO_THREADS", "1");
    let serial = build();
    std::env::set_var("IPGEO_THREADS", "4");
    let parallel = build();
    std::env::remove_var("IPGEO_THREADS");

    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.prefix, p.prefix);
        assert_eq!(
            s.location.lat().to_bits(),
            p.location.lat().to_bits(),
            "latitude differs for {}",
            s.prefix
        );
        assert_eq!(
            s.location.lon().to_bits(),
            p.location.lon().to_bits(),
            "longitude differs for {}",
            s.prefix
        );
        assert_eq!(s.evidence, p.evidence, "evidence differs for {}", s.prefix);
    }
    assert_eq!(
        ipgeo::publish::to_csv(&serial),
        ipgeo::publish::to_csv(&parallel)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The cache is transparent: for any endpoint pair, the cached path
    /// delay equals the uncached recomputation bit-for-bit, in both
    /// directions (base RTT is symmetric) and on repeat lookups.
    #[test]
    fn cached_base_delay_matches_uncached(seed in 0u64..1000, a in 0usize..64, b in 0usize..64) {
        let world = World::generate(WorldConfig::small(Seed(4242))).unwrap();
        let net = Network::new(Seed(seed));
        let (x, y) = (world.hosts[a].id, world.hosts[b].id);
        let cached = net.base_rtt(&world, x, y);
        let uncached = net.base_rtt_uncached(&world, x, y);
        prop_assert_eq!(cached.value().to_bits(), uncached.value().to_bits());
        // A second lookup is a hit and returns the same bits; the reverse
        // direction shares the unordered cache entry.
        let again = net.base_rtt(&world, x, y);
        let reverse = net.base_rtt(&world, y, x);
        prop_assert_eq!(again.value().to_bits(), cached.value().to_bits());
        prop_assert_eq!(reverse.value().to_bits(), cached.value().to_bits());
        prop_assert!(net.cache_stats().hits >= 2);
    }
}
