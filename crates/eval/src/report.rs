//! Plain-text rendering of experiment outputs.
//!
//! Every experiment produces a [`Report`]: a title, context lines, and a
//! set of named series or table rows, rendered as markdown-ish text that
//! the `fig*` binaries print and EXPERIMENTS.md embeds.

use geo_model::stats::CdfPoint;
use std::fmt;

/// A rendered experiment output.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Title, e.g. `Figure 2a — number of VPs vs accuracy`.
    pub title: String,
    /// Free-form context lines (dataset sizes, parameters).
    pub notes: Vec<String>,
    /// Table sections: (heading, column names, rows).
    pub tables: Vec<Table>,
}

/// One table in a report.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Section heading.
    pub heading: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates a report with a title.
    pub fn new(title: impl Into<String>) -> Report {
        Report {
            title: title.into(),
            ..Report::default()
        }
    }

    /// Adds a context note.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Adds a table.
    pub fn table(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Adds a CDF series evaluated at the given thresholds as a table
    /// section: one row per threshold, one column per series.
    pub fn cdf_section(
        &mut self,
        heading: impl Into<String>,
        xlabel: &str,
        thresholds: &[f64],
        series: &[(String, Vec<CdfPoint>)],
    ) {
        let mut columns = vec![xlabel.to_string()];
        columns.extend(series.iter().map(|(name, _)| name.clone()));
        let rows = thresholds
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let mut row = vec![format_value(x)];
                for (_, pts) in series {
                    row.push(format!("{:.3}", pts[i].fraction));
                }
                row
            })
            .collect();
        self.tables.push(Table {
            heading: heading.into(),
            columns,
            rows,
        });
    }
}

/// Log-spaced thresholds matching the paper's log-scale x axes
/// (10^0 .. 10^4 km by default).
pub fn log_thresholds(lo: f64, hi: f64, per_decade: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && per_decade > 0);
    let mut out = Vec::new();
    let step = 1.0 / per_decade as f64;
    let mut e = lo.log10();
    while e <= hi.log10() + 1e-9 {
        out.push(10f64.powf(e));
        e += step;
    }
    out
}

fn format_value(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 1.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        for n in &self.notes {
            writeln!(f, "  {n}")?;
        }
        for t in &self.tables {
            writeln!(f)?;
            if !t.heading.is_empty() {
                writeln!(f, "### {}", t.heading)?;
            }
            writeln!(f, "| {} |", t.columns.join(" | "))?;
            writeln!(
                f,
                "|{}|",
                t.columns
                    .iter()
                    .map(|_| "---")
                    .collect::<Vec<_>>()
                    .join("|")
            )?;
            for row in &t.rows {
                writeln!(f, "| {} |", row.join(" | "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::stats;

    #[test]
    fn renders_markdown() {
        let mut r = Report::new("Figure X");
        r.note("n = 3");
        r.table(Table {
            heading: "counts".into(),
            columns: vec!["k".into(), "v".into()],
            rows: vec![vec!["1".into(), "2".into()]],
        });
        let s = r.to_string();
        assert!(s.contains("## Figure X"));
        assert!(s.contains("| k | v |"));
        assert!(s.contains("| 1 | 2 |"));
    }

    #[test]
    fn log_thresholds_are_log_spaced() {
        let t = log_thresholds(1.0, 10_000.0, 1);
        assert_eq!(t.len(), 5);
        assert!((t[0] - 1.0).abs() < 1e-9);
        assert!((t[4] - 10_000.0).abs() < 1e-3);
    }

    #[test]
    fn cdf_section_shapes() {
        let mut r = Report::new("t");
        let data = [1.0, 5.0, 50.0];
        let xs = log_thresholds(1.0, 100.0, 1);
        let series = vec![("errors".to_string(), stats::cdf_at(&data, &xs))];
        r.cdf_section("cdf", "km", &xs, &series);
        assert_eq!(r.tables[0].rows.len(), xs.len());
        assert_eq!(r.tables[0].columns.len(), 2);
    }

    #[test]
    #[should_panic]
    fn log_thresholds_validate() {
        let _ = log_thresholds(0.0, 10.0, 1);
    }
}
