//! # eval
//!
//! The experiment harness: one module per table/figure of the replication
//! paper, each producing a [`report::Report`] whose rows/series mirror
//! what the paper plots. The `bench` crate's `fig*`/`tab*` binaries are
//! thin wrappers around these functions.
//!
//! The expensive shared state — the paper-scale world, the sanitized
//! vantage points, the probe→anchor minimum-RTT matrix — is materialized
//! once per process in [`dataset::Dataset`]. Experiment fidelity (number
//! of trials, target subsampling) is controlled by [`dataset::EvalScale`],
//! so Criterion benches can run the identical code on reduced settings.

pub mod dataset;
pub mod experiments;
pub mod report;

pub use dataset::{Dataset, EvalScale};
pub use report::Report;
