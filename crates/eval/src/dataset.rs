//! Shared experiment state: the world, the sanitized vantage points, and
//! the bulk measurement matrices.
//!
//! Building a [`Dataset`] reproduces the paper's §4 pipeline end to end:
//! generate (stand in for "recruit") the measurement infrastructure, run
//! the meshed anchor measurements, sanitize anchors then probes (§4.3),
//! and materialize the probe→anchor minimum-RTT campaign every experiment
//! reads. The representative campaign of the million-scale experiments
//! (21.7M measurements at full scale) is built lazily on first use.

use geo_model::rng::Seed;
use geo_model::runtime::par_map_indexed;
use geo_model::soi::SpeedOfInternet;
use geo_model::units::Ms;
use ipgeo::{sanitize_anchors, sanitize_probes};
use net_sim::Network;
use std::sync::OnceLock;
use web_sim::ecosystem::{WebConfig, WebEcosystem};
use world_sim::hitlist::HitlistEntry;
use world_sim::host::Host;
use world_sim::ids::HostId;
use world_sim::{World, WorldConfig};

/// Experiment fidelity knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalScale {
    /// Seed for the whole evaluation.
    pub seed: Seed,
    /// Use the paper-scale world (723 anchors / 10k probes) or the
    /// miniature test world.
    pub paper_world: bool,
    /// Random-subset trials for Figures 2a/2b (the paper uses 100).
    pub trials: usize,
    /// Limit the number of targets per experiment (`None` = all).
    pub target_sample: Option<usize>,
    /// Limit the number of targets for the street-level pipeline
    /// (`None` = all).
    pub street_sample: Option<usize>,
}

impl EvalScale {
    /// Full paper fidelity.
    pub fn full(seed: Seed) -> EvalScale {
        EvalScale {
            seed,
            paper_world: true,
            trials: 100,
            target_sample: None,
            street_sample: None,
        }
    }

    /// Reduced fidelity: paper-scale world, subsampled targets and fewer
    /// trials. The default for the `fig*` binaries (override with
    /// `IPGEO_FULL=1`).
    pub fn quick(seed: Seed) -> EvalScale {
        EvalScale {
            seed,
            paper_world: true,
            trials: 25,
            target_sample: Some(240),
            street_sample: Some(120),
        }
    }

    /// Miniature world for Criterion benches and tests.
    pub fn tiny(seed: Seed) -> EvalScale {
        EvalScale {
            seed,
            paper_world: false,
            trials: 5,
            target_sample: None,
            street_sample: Some(8),
        }
    }

    /// Reads the scale from the environment: `IPGEO_SEED` (default 2023)
    /// and `IPGEO_FULL=1` for full fidelity.
    pub fn from_env() -> EvalScale {
        let seed = std::env::var("IPGEO_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .map_or(Seed(2023), Seed);
        if std::env::var("IPGEO_FULL").is_ok_and(|v| v == "1") {
            EvalScale::full(seed)
        } else {
            EvalScale::quick(seed)
        }
    }
}

/// A dense RTT matrix (`f32` ms; NaN = timeout).
#[derive(Debug, Clone)]
pub struct RttMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl RttMatrix {
    fn new(rows: usize, cols: usize) -> RttMatrix {
        RttMatrix {
            rows,
            cols,
            data: vec![f32::NAN; rows * cols],
        }
    }

    /// Assembles a matrix from per-row cell vectors (the parallel campaign
    /// builders produce one row per worker task). Every row must have
    /// `cols` cells.
    fn from_rows(cols: usize, rows: Vec<Vec<f32>>) -> RttMatrix {
        let n = rows.len();
        let mut data = Vec::with_capacity(n * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged campaign row");
            data.extend_from_slice(&row);
        }
        RttMatrix {
            rows: n,
            cols,
            data,
        }
    }

    /// Encodes one measurement as a cell (`NaN` = timeout).
    #[inline]
    fn cell(v: Option<Ms>) -> f32 {
        v.map_or(f32::NAN, |m| m.value() as f32)
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: Option<Ms>) {
        self.data[r * self.cols + c] = RttMatrix::cell(v);
    }

    /// The measured min-RTT, `None` on timeout.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Option<Ms> {
        let v = self.data[r * self.cols + c];
        if v.is_nan() {
            None
        } else {
            Some(Ms(v as f64))
        }
    }

    /// One row of raw cells (`NaN` = timeout): the hot-loop access path —
    /// a single bounds computation per row instead of one per cell.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Number of rows (vantage points).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (targets).
    pub fn cols(&self) -> usize {
        self.cols
    }
}

/// The shared evaluation dataset.
pub struct Dataset {
    /// The world (with web servers added by the ecosystem generator).
    pub world: World,
    /// The web ecosystem.
    pub eco: WebEcosystem,
    /// The network simulator.
    pub net: Network,
    /// The scale this dataset was built at.
    pub scale: EvalScale,
    /// Sanitized targets (anchors that survived §4.3), subsampled per the
    /// scale.
    pub targets: Vec<HostId>,
    /// All sanitized anchors (the street-level vantage points).
    pub anchors: Vec<HostId>,
    /// Sanitized probes (the million-scale vantage points).
    pub vps: Vec<HostId>,
    /// Anchors removed by sanitization.
    pub removed_anchors: Vec<HostId>,
    /// Probes removed by sanitization.
    pub removed_probes: Vec<HostId>,
    /// Min-RTT matrix: `vps x targets`.
    pub rtt: RttMatrix,
    /// Min-RTT mesh among sanitized anchors: `anchors x anchors`.
    pub anchor_rtt: RttMatrix,
    /// The representatives per target (parallel to `targets`).
    pub reps: Vec<Vec<HitlistEntry>>,
    rep_rtt: OnceLock<RttMatrix>,
}

impl Dataset {
    /// Builds the dataset: world, ecosystem, sanitization, campaigns.
    pub fn load(scale: EvalScale) -> Dataset {
        let cfg = if scale.paper_world {
            WorldConfig::paper(scale.seed)
        } else {
            WorldConfig::small(scale.seed)
        };
        let mut world = World::generate(cfg).expect("valid preset config");
        let eco =
            WebEcosystem::generate(&mut world, &WebConfig::default()).expect("valid web config");
        let net = Network::new(scale.seed.derive("network"));
        let soi = SpeedOfInternet::CBG;

        // §4.3 step 1: meshed anchor measurements, sanitize anchors.
        // Row-parallel: each row is a pure function of its index, so the
        // mesh is bit-identical at any `IPGEO_THREADS`.
        let raw_anchors = world.anchors.clone();
        let mesh: Vec<Vec<Option<Ms>>> = par_map_indexed(raw_anchors.len(), |i| {
            let src = raw_anchors[i];
            raw_anchors
                .iter()
                .enumerate()
                .map(|(j, &dst)| {
                    if i == j {
                        None
                    } else {
                        net.ping_min(
                            &world,
                            src,
                            world.host(dst).ip,
                            3,
                            0x4E5A ^ ((i as u64) << 24 | j as u64),
                        )
                        .rtt()
                    }
                })
                .collect()
        });
        let anchor_report = sanitize_anchors(&world, &raw_anchors, &mesh, soi);
        let anchors = anchor_report.kept.clone();

        // §4.3 step 2: probes vs trusted anchors; the same measurements
        // feed the main RTT matrix.
        let raw_probes = world.probes.clone();
        let probe_rtts: Vec<Vec<Option<Ms>>> = par_map_indexed(raw_probes.len(), |p| {
            let probe = raw_probes[p];
            anchors
                .iter()
                .map(|&a| {
                    net.ping_min(
                        &world,
                        probe,
                        world.host(a).ip,
                        3,
                        0x9A11 ^ (p as u64) << 20,
                    )
                    .rtt()
                })
                .collect()
        });
        let probe_report = sanitize_probes(&world, &raw_probes, &anchors, &probe_rtts, soi);
        let vps = probe_report.kept.clone();

        // Target subsample (deterministic stride).
        let targets: Vec<HostId> = match scale.target_sample {
            Some(n) if n < anchors.len() => {
                let stride = anchors.len() as f64 / n as f64;
                (0..n)
                    .map(|i| anchors[(i as f64 * stride) as usize])
                    .collect()
            }
            _ => anchors.clone(),
        };

        // Dense matrices over the sanitized populations.
        let anchor_index: std::collections::HashMap<HostId, usize> =
            anchors.iter().enumerate().map(|(i, &a)| (a, i)).collect();
        let probe_index: std::collections::HashMap<HostId, usize> = raw_probes
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i))
            .collect();
        let mut rtt = RttMatrix::new(vps.len(), targets.len());
        for (vi, &vp) in vps.iter().enumerate() {
            let row = &probe_rtts[probe_index[&vp]];
            for (ti, &t) in targets.iter().enumerate() {
                rtt.set(vi, ti, row[anchor_index[&t]]);
            }
        }
        let raw_anchor_index: std::collections::HashMap<HostId, usize> = raw_anchors
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, i))
            .collect();
        let mut anchor_rtt = RttMatrix::new(anchors.len(), anchors.len());
        for (i, &a) in anchors.iter().enumerate() {
            for (j, &b) in anchors.iter().enumerate() {
                anchor_rtt.set(i, j, mesh[raw_anchor_index[&a]][raw_anchor_index[&b]]);
            }
        }

        // Representatives per target.
        let reps: Vec<Vec<HitlistEntry>> = targets
            .iter()
            .map(|&t| {
                let prefix = world.host(t).ip.prefix24();
                world
                    .hitlist
                    .representatives(prefix, ipgeo::million::REPRESENTATIVES)
            })
            .collect();

        Dataset {
            world,
            eco,
            net,
            scale,
            targets,
            anchors,
            vps,
            removed_anchors: anchor_report.removed,
            removed_probes: probe_report.removed,
            rtt,
            anchor_rtt,
            reps,
            rep_rtt: OnceLock::new(),
        }
    }

    /// The representative-campaign matrix: `vps x (targets *
    /// REPRESENTATIVES)`, built lazily (21.7M measurements at full scale).
    /// Row-parallel like the eager campaigns; bit-identical at any
    /// `IPGEO_THREADS`.
    pub fn rep_rtt(&self) -> &RttMatrix {
        self.rep_rtt.get_or_init(|| {
            let k = ipgeo::million::REPRESENTATIVES;
            let cols = self.targets.len() * k;
            let rows = par_map_indexed(self.vps.len(), |vi| {
                let vp = self.vps[vi];
                let mut row = vec![f32::NAN; cols];
                for (ti, reps) in self.reps.iter().enumerate() {
                    for (ri, rep) in reps.iter().enumerate().take(k) {
                        let out = self.net.ping_min(
                            &self.world,
                            vp,
                            rep.ip,
                            3,
                            0x5E9 ^ ((ti as u64) << 8 | ri as u64),
                        );
                        row[ti * k + ri] = RttMatrix::cell(out.rtt());
                    }
                }
                row
            });
            RttMatrix::from_rows(cols, rows)
        })
    }

    /// Host behind a target index.
    pub fn target_host(&self, idx: usize) -> &Host {
        self.world.host(self.targets[idx])
    }

    /// Geolocation error of an estimate for a target (km, against the
    /// true location).
    pub fn error_km(&self, idx: usize, estimate: &geo_model::GeoPoint) -> f64 {
        estimate.distance(&self.target_host(idx).location).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::load(EvalScale::tiny(Seed(231)))
    }

    #[test]
    fn sanitization_removes_planted_hosts() {
        let d = tiny();
        // The small config plants 1 bad anchor and 4 bad probes.
        assert!(!d.removed_anchors.is_empty());
        assert!(d.removed_probes.len() >= 4);
        for &a in &d.anchors {
            assert!(!d.removed_anchors.contains(&a));
        }
    }

    #[test]
    fn matrices_have_consistent_shapes() {
        let d = tiny();
        assert_eq!(d.rtt.rows(), d.vps.len());
        assert_eq!(d.rtt.cols(), d.targets.len());
        assert_eq!(d.anchor_rtt.rows(), d.anchors.len());
        assert_eq!(d.reps.len(), d.targets.len());
    }

    #[test]
    fn rtt_matrix_mostly_populated() {
        let d = tiny();
        let mut hits = 0;
        let mut total = 0;
        for v in 0..d.rtt.rows() {
            for t in 0..d.rtt.cols() {
                total += 1;
                if d.rtt.get(v, t).is_some() {
                    hits += 1;
                }
            }
        }
        assert!(hits as f64 / total as f64 > 0.95, "{hits}/{total}");
    }

    #[test]
    fn rep_matrix_lazy_build() {
        let d = tiny();
        let m = d.rep_rtt();
        assert_eq!(m.rows(), d.vps.len());
        assert_eq!(m.cols(), d.targets.len() * ipgeo::million::REPRESENTATIVES);
        // Second call returns the same allocation.
        let m2 = d.rep_rtt();
        assert_eq!(m.cols(), m2.cols());
    }

    #[test]
    fn target_subsampling() {
        let mut scale = EvalScale::tiny(Seed(232));
        scale.target_sample = Some(5);
        let d = Dataset::load(scale);
        assert_eq!(d.targets.len(), 5);
        assert_eq!(d.rtt.cols(), 5);
    }
}
