//! Shared experiment state: the world, the sanitized vantage points, and
//! the bulk measurement matrices.
//!
//! Building a [`Dataset`] reproduces the paper's §4 pipeline end to end:
//! generate (stand in for "recruit") the measurement infrastructure, run
//! the meshed anchor measurements, sanitize anchors then probes (§4.3),
//! and materialize the probe→anchor minimum-RTT campaign every experiment
//! reads. The representative campaign of the million-scale experiments
//! (21.7M measurements at full scale) is built lazily on first use.
//!
//! Campaign outputs stage through [`DelayMatrix`] (`f64`, exact measured
//! bits for the sanitizers) and land in dense [`RttMatrix`] arenas; every
//! bulk measurement goes through `Network::ping_min_once`, which resolves
//! the base RTT through the route cache without inserting into the
//! base-delay cache — campaigns touch each (src, dst) pair exactly once,
//! so a per-pair cache entry would cost memory and hashing for reads that
//! never come. See DESIGN.md §10 for the hot-path architecture.

use geo_model::rng::Seed;
use geo_model::soi::SpeedOfInternet;
use ipgeo::{sanitize_anchors, sanitize_probes};
use net_sim::{Network, RowScratch};
use std::sync::OnceLock;
use web_sim::ecosystem::{WebConfig, WebEcosystem};
use world_sim::hitlist::HitlistEntry;
use world_sim::host::Host;
use world_sim::ids::HostId;
use world_sim::{World, WorldConfig};

pub use geo_model::matrix::{DelayMatrix, RttMatrix};

/// Experiment fidelity knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalScale {
    /// Seed for the whole evaluation.
    pub seed: Seed,
    /// Use the paper-scale world (723 anchors / 10k probes) or the
    /// miniature test world.
    pub paper_world: bool,
    /// Random-subset trials for Figures 2a/2b (the paper uses 100).
    pub trials: usize,
    /// Limit the number of targets per experiment (`None` = all).
    pub target_sample: Option<usize>,
    /// Limit the number of targets for the street-level pipeline
    /// (`None` = all).
    pub street_sample: Option<usize>,
}

impl EvalScale {
    /// Full paper fidelity.
    pub fn full(seed: Seed) -> EvalScale {
        EvalScale {
            seed,
            paper_world: true,
            trials: 100,
            target_sample: None,
            street_sample: None,
        }
    }

    /// Reduced fidelity: paper-scale world, subsampled targets and fewer
    /// trials. The default for the `fig*` binaries (override with
    /// `IPGEO_FULL=1`).
    pub fn quick(seed: Seed) -> EvalScale {
        EvalScale {
            seed,
            paper_world: true,
            trials: 25,
            target_sample: Some(240),
            street_sample: Some(120),
        }
    }

    /// Miniature world for Criterion benches and tests.
    pub fn tiny(seed: Seed) -> EvalScale {
        EvalScale {
            seed,
            paper_world: false,
            trials: 5,
            target_sample: None,
            street_sample: Some(8),
        }
    }

    /// Reads the scale from the environment: `IPGEO_SEED` (default 2023)
    /// and `IPGEO_FULL=1` for full fidelity.
    pub fn from_env() -> EvalScale {
        let seed = std::env::var("IPGEO_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .map_or(Seed(2023), Seed);
        if std::env::var("IPGEO_FULL").is_ok_and(|v| v == "1") {
            EvalScale::full(seed)
        } else {
            EvalScale::quick(seed)
        }
    }
}

/// Positions of an in-order subset within its source list: `subset` must
/// preserve `all`'s order (the sanitizers' `kept` lists do). A linear
/// two-pointer walk — no hash maps on the assembly path.
fn positions_of(subset: &[HostId], all: &[HostId]) -> Vec<usize> {
    let mut out = Vec::with_capacity(subset.len());
    let mut i = 0;
    for &want in subset {
        while all[i] != want {
            i += 1;
        }
        out.push(i);
        i += 1;
    }
    out
}

/// The shared evaluation dataset.
pub struct Dataset {
    /// The world (with web servers added by the ecosystem generator).
    pub world: World,
    /// The web ecosystem.
    pub eco: WebEcosystem,
    /// The network simulator.
    pub net: Network,
    /// The scale this dataset was built at.
    pub scale: EvalScale,
    /// Sanitized targets (anchors that survived §4.3), subsampled per the
    /// scale.
    pub targets: Vec<HostId>,
    /// All sanitized anchors (the street-level vantage points).
    pub anchors: Vec<HostId>,
    /// Sanitized probes (the million-scale vantage points).
    pub vps: Vec<HostId>,
    /// Anchors removed by sanitization.
    pub removed_anchors: Vec<HostId>,
    /// Probes removed by sanitization.
    pub removed_probes: Vec<HostId>,
    /// Min-RTT matrix: `vps x targets`.
    pub rtt: RttMatrix,
    /// Min-RTT mesh among sanitized anchors: `anchors x anchors`.
    pub anchor_rtt: RttMatrix,
    /// The representatives per target (parallel to `targets`).
    pub reps: Vec<Vec<HitlistEntry>>,
    rep_rtt: OnceLock<RttMatrix>,
}

impl Dataset {
    /// Builds the dataset: world, ecosystem, sanitization, campaigns.
    pub fn load(scale: EvalScale) -> Dataset {
        let cfg = if scale.paper_world {
            WorldConfig::paper(scale.seed)
        } else {
            WorldConfig::small(scale.seed)
        };
        let mut world = World::generate(cfg).expect("valid preset config");
        let eco =
            WebEcosystem::generate(&mut world, &WebConfig::default()).expect("valid web config");
        let net = Network::new(scale.seed.derive("network"));
        let soi = SpeedOfInternet::CBG;

        // §4.3 step 1: meshed anchor measurements, sanitize anchors.
        // Row-parallel straight into the staging arena: each row is a pure
        // function of its index, so the mesh is bit-identical at any
        // `IPGEO_THREADS`. The target lane hoists the per-call constant
        // work (`host_by_ip`, last-mile, access delays) out of the loops;
        // see DESIGN.md §10.
        let raw_anchors = world.anchors.clone();
        let n_anchors = raw_anchors.len();
        let anchor_lane = net.target_lane(&world, &raw_anchors);
        let mesh = DelayMatrix::par_build_with(n_anchors, n_anchors, RowScratch::new, {
            let (world, net) = (&world, &net);
            let (raw_anchors, anchor_lane) = (&raw_anchors, &anchor_lane);
            move |scratch, i, row| {
                net.campaign_row(
                    world,
                    anchor_lane,
                    scratch,
                    raw_anchors[i],
                    3,
                    |j| 0x4E5A ^ ((i as u64) << 24 | j as u64),
                    Some(i), // diagonal stays NaN
                    |j, out| row[j] = DelayMatrix::cell(out.rtt()),
                );
            }
        });
        let anchor_report = sanitize_anchors(&world, &raw_anchors, &mesh, soi);
        let anchors = anchor_report.kept.clone();

        // §4.3 step 2: probes vs trusted anchors; the same measurements
        // feed the main RTT matrix. Every cell is a pure function of
        // (probe, anchor, packet index), so rows may be computed in any
        // order: computing them grouped by the probe's attachment PoP lets
        // consecutive rows reuse the scratch's route sequences, and a
        // row permutation afterwards restores probe order bit-for-bit.
        let raw_probes = world.probes.clone();
        let probe_lane = net.target_lane(&world, &anchors);
        let mut order: Vec<u32> = (0..raw_probes.len() as u32).collect();
        order.sort_by_key(|&p| (net.attach_group(&world, raw_probes[p as usize]), p));
        let grouped =
            DelayMatrix::par_build_with(raw_probes.len(), anchors.len(), RowScratch::new, {
                let (world, net) = (&world, &net);
                let (raw_probes, probe_lane, order) = (&raw_probes, &probe_lane, &order);
                move |scratch, k, row| {
                    let p = order[k] as usize;
                    net.campaign_row(
                        world,
                        probe_lane,
                        scratch,
                        raw_probes[p],
                        3,
                        |_| 0x9A11 ^ (p as u64) << 20,
                        None,
                        |a, out| row[a] = DelayMatrix::cell(out.rtt()),
                    );
                }
            });
        let mut pos = vec![0u32; order.len()];
        for (k, &p) in order.iter().enumerate() {
            pos[p as usize] = k as u32;
        }
        let probe_rtts = DelayMatrix::par_build(raw_probes.len(), anchors.len(), |p, row| {
            row.copy_from_slice(grouped.row(pos[p] as usize));
        });
        let probe_report = sanitize_probes(&world, &raw_probes, &anchors, &probe_rtts, soi);
        let vps = probe_report.kept.clone();

        // Target subsample (deterministic stride); `target_cols[t]` is the
        // target's column in `probe_rtts` / row in the anchor mesh order.
        let target_cols: Vec<usize> = match scale.target_sample {
            Some(n) if n < anchors.len() => {
                let stride = anchors.len() as f64 / n as f64;
                (0..n).map(|i| (i as f64 * stride) as usize).collect()
            }
            _ => (0..anchors.len()).collect(),
        };
        let targets: Vec<HostId> = target_cols.iter().map(|&c| anchors[c]).collect();

        // Dense matrices over the sanitized populations, by direct index
        // remap (kept lists preserve input order, so the positions come
        // from a linear walk, not hash lookups).
        let vp_rows = positions_of(&vps, &raw_probes);
        let rtt = RttMatrix::par_build(vps.len(), targets.len(), |vi, out| {
            let row = probe_rtts.row(vp_rows[vi]);
            for (slot, &col) in out.iter_mut().zip(&target_cols) {
                *slot = row[col] as f32;
            }
        });
        let anchor_rows = positions_of(&anchors, &raw_anchors);
        let anchor_rtt = RttMatrix::par_build(anchors.len(), anchors.len(), |i, out| {
            let row = mesh.row(anchor_rows[i]);
            for (slot, &col) in out.iter_mut().zip(&anchor_rows) {
                *slot = row[col] as f32;
            }
        });

        // Representatives per target.
        let reps: Vec<Vec<HitlistEntry>> = targets
            .iter()
            .map(|&t| {
                let prefix = world.host(t).ip.prefix24();
                world
                    .hitlist
                    .representatives(prefix, ipgeo::million::REPRESENTATIVES)
            })
            .collect();

        Dataset {
            world,
            eco,
            net,
            scale,
            targets,
            anchors,
            vps,
            removed_anchors: anchor_report.removed,
            removed_probes: probe_report.removed,
            rtt,
            anchor_rtt,
            reps,
            rep_rtt: OnceLock::new(),
        }
    }

    /// The representative-campaign matrix: `vps x (targets *
    /// REPRESENTATIVES)`, built lazily (21.7M measurements at full scale).
    /// Row-parallel like the eager campaigns; bit-identical at any
    /// `IPGEO_THREADS`.
    pub fn rep_rtt(&self) -> &RttMatrix {
        self.rep_rtt.get_or_init(|| {
            let k = ipgeo::million::REPRESENTATIVES;
            let cols = self.targets.len() * k;
            RttMatrix::par_build(self.vps.len(), cols, |vi, row| {
                let vp = self.vps[vi];
                for (ti, reps) in self.reps.iter().enumerate() {
                    for (ri, rep) in reps.iter().enumerate().take(k) {
                        let out = self.net.ping_min_once(
                            &self.world,
                            vp,
                            rep.ip,
                            3,
                            0x5E9 ^ ((ti as u64) << 8 | ri as u64),
                        );
                        row[ti * k + ri] = RttMatrix::cell(out.rtt());
                    }
                }
            })
        })
    }

    /// Host behind a target index.
    pub fn target_host(&self, idx: usize) -> &Host {
        self.world.host(self.targets[idx])
    }

    /// Geolocation error of an estimate for a target (km, against the
    /// true location).
    pub fn error_km(&self, idx: usize, estimate: &geo_model::GeoPoint) -> f64 {
        estimate.distance(&self.target_host(idx).location).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::load(EvalScale::tiny(Seed(231)))
    }

    #[test]
    fn sanitization_removes_planted_hosts() {
        let d = tiny();
        // The small config plants 1 bad anchor and 4 bad probes.
        assert!(!d.removed_anchors.is_empty());
        assert!(d.removed_probes.len() >= 4);
        for &a in &d.anchors {
            assert!(!d.removed_anchors.contains(&a));
        }
    }

    #[test]
    fn matrices_have_consistent_shapes() {
        let d = tiny();
        assert_eq!(d.rtt.rows(), d.vps.len());
        assert_eq!(d.rtt.cols(), d.targets.len());
        assert_eq!(d.anchor_rtt.rows(), d.anchors.len());
        assert_eq!(d.reps.len(), d.targets.len());
    }

    #[test]
    fn rtt_matrix_mostly_populated() {
        let d = tiny();
        let mut hits = 0;
        let mut total = 0;
        for v in 0..d.rtt.rows() {
            for t in 0..d.rtt.cols() {
                total += 1;
                if d.rtt.get(v, t).is_some() {
                    hits += 1;
                }
            }
        }
        assert!(hits as f64 / total as f64 > 0.95, "{hits}/{total}");
    }

    #[test]
    fn rep_matrix_lazy_build() {
        let d = tiny();
        let m = d.rep_rtt();
        assert_eq!(m.rows(), d.vps.len());
        assert_eq!(m.cols(), d.targets.len() * ipgeo::million::REPRESENTATIVES);
        // Second call returns the same allocation.
        let m2 = d.rep_rtt();
        assert_eq!(m.cols(), m2.cols());
    }

    #[test]
    fn target_subsampling() {
        let mut scale = EvalScale::tiny(Seed(232));
        scale.target_sample = Some(5);
        let d = Dataset::load(scale);
        assert_eq!(d.targets.len(), 5);
        assert_eq!(d.rtt.cols(), 5);
    }

    #[test]
    fn subset_positions_walk_in_order() {
        let all: Vec<HostId> = (0..10).map(HostId).collect();
        let subset = [HostId(1), HostId(4), HostId(5), HostId(9)];
        assert_eq!(positions_of(&subset, &all), vec![1, 4, 5, 9]);
        assert_eq!(positions_of(&[], &all), Vec::<usize>::new());
    }
}
