//! Figure 6 — delay noise (6a), population density (6b), and time to
//! geolocate (6c).

use super::fig5::StreetSet;
use crate::dataset::Dataset;
use crate::report::{Report, Table};
use geo_model::stats;

/// Figure 6a: CDF over targets of the fraction of landmarks whose
/// `D1 + D2` is negative (unusable).
pub fn fig6a(d: &Dataset, set: &StreetSet) -> Report {
    let _ = d;
    let mut report = Report::new("Figure 6a — fraction of landmarks with D1 + D2 < 0");
    let fractions: Vec<f64> = set
        .outcomes
        .iter()
        .filter_map(|(_, out)| {
            let measured: Vec<f64> = out.landmarks.iter().filter_map(|l| l.delay_ms).collect();
            if measured.is_empty() {
                return None;
            }
            let neg = measured.iter().filter(|&&v| v < 0.0).count();
            Some(neg as f64 / measured.len() as f64)
        })
        .collect();
    report.note(format!(
        "median fraction of unusable landmarks: {:.2} over {} targets with measurements",
        stats::median(&fractions).unwrap_or(f64::NAN),
        fractions.len()
    ));
    let xs: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let series = vec![(
        "fraction unusable".to_string(),
        stats::cdf_at(&fractions, &xs),
    )];
    report.cdf_section(
        "CDF of targets",
        "fraction of landmarks with D1+D2 < 0",
        &xs,
        &series,
    );
    report
}

/// Figure 6b: street-level error vs population density at the target,
/// with a log-log least-squares fit. The paper's finding: no dependence.
pub fn fig6b(d: &Dataset, set: &StreetSet) -> Report {
    let mut report = Report::new("Figure 6b — error distance vs population density");
    let mut log_err = Vec::new();
    let mut log_density = Vec::new();
    let mut sample = Table {
        heading: "sample of (error km, density people/km²)".into(),
        columns: ["error (km)", "density"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows: Vec::new(),
    };
    for (t, out) in &set.outcomes {
        let Some(est) = out.estimate else { continue };
        let err = d.error_km(*t, &est).max(0.01);
        let density = d.world.density_at(&d.target_host(*t).location).max(0.01);
        log_err.push(err.log10());
        log_density.push(density.log10());
        if sample.rows.len() < 15 {
            sample
                .rows
                .push(vec![format!("{err:.1}"), format!("{density:.0}")]);
        }
    }
    match stats::linear_fit(&log_err, &log_density) {
        Some(line) => report.note(format!(
            "log-log fit: slope {:.3}, r² {:.3} over {} targets (paper: no dependence)",
            line.slope,
            line.r_squared,
            log_err.len()
        )),
        None => report.note("fit unavailable (degenerate data)".to_string()),
    }
    report.table(sample);
    report
}

/// Figure 6c: CDF of the time to geolocate a target.
pub fn fig6c(d: &Dataset, set: &StreetSet) -> Report {
    let _ = d;
    let mut report = Report::new("Figure 6c — time to geolocate a target");
    let secs: Vec<f64> = set.outcomes.iter().map(|(_, o)| o.virtual_secs).collect();
    report.note(format!(
        "median {:.0} s ({:.1} min); paper: 1238 s with a 32-core pipeline",
        stats::median(&secs).unwrap_or(f64::NAN),
        stats::median(&secs).unwrap_or(f64::NAN) / 60.0
    ));
    let xs: Vec<f64> = (0..=10).map(|i| i as f64 * 2000.0).collect();
    let series = vec![("time".to_string(), stats::cdf_at(&secs, &xs))];
    report.cdf_section("CDF of targets", "time to geolocate (s)", &xs, &series);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::EvalScale;
    use geo_model::rng::Seed;

    fn setup() -> (Dataset, StreetSet) {
        let d = Dataset::load(EvalScale::tiny(Seed(291)));
        let s = StreetSet::compute(&d);
        (d, s)
    }

    #[test]
    fn fig6a_fractions_in_unit_interval() {
        let (d, s) = setup();
        let r = fig6a(&d, &s);
        assert!(r.notes[0].contains("median fraction"));
        for row in &r.tables[0].rows {
            let f: f64 = row[1].parse().unwrap();
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn fig6c_times_are_positive() {
        let (d, s) = setup();
        let r = fig6c(&d, &s);
        assert!(r.notes[0].contains("median"));
        let med: f64 = r.notes[0]
            .split("median ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(med > 0.0);
    }
}
