//! §4.3 sanitization and §5.1.3 deployability reports.

use crate::dataset::Dataset;
use crate::report::{Report, Table};
use atlas_sim::traffic::{fleet_time_secs, ProbeRate};
use geo_model::stats;
use ipgeo::million::REPRESENTATIVES;

/// §4.3: how many anchors/probes the sanitizer removed, and whether the
/// planted mis-geolocations were caught.
pub fn sanitize_report(d: &Dataset) -> Report {
    let mut report = Report::new("§4.3 — sanitizing platform geolocation");
    let planted_anchors = d
        .world
        .anchors
        .iter()
        .filter(|&&a| d.world.host(a).is_mis_geolocated())
        .count();
    let planted_probes = d
        .world
        .probes
        .iter()
        .filter(|&&p| d.world.host(p).is_mis_geolocated())
        .count();
    let caught_anchors = d
        .removed_anchors
        .iter()
        .filter(|&&a| d.world.host(a).is_mis_geolocated())
        .count();
    let caught_probes = d
        .removed_probes
        .iter()
        .filter(|&&p| d.world.host(p).is_mis_geolocated())
        .count();
    report.note(format!(
        "anchors removed: {} (paper: 9); planted {planted_anchors}, caught {caught_anchors}",
        d.removed_anchors.len()
    ));
    report.note(format!(
        "probes removed: {} (paper: 96); planted {planted_probes}, caught {caught_probes}",
        d.removed_probes.len()
    ));
    report
}

/// §5.1.3: why the original VP selection cannot be deployed on the
/// platform — per-VP probing rates vs the original 500 pps.
pub fn deployability(d: &Dataset) -> Report {
    let mut report = Report::new("§5.1.3 — deployability of the VP selection on the platform");
    let rates: Vec<f64> = d
        .vps
        .iter()
        .map(|&p| ProbeRate::of(&d.world, p).0)
        .collect();
    report.note(format!(
        "probe rates: median {:.1} pps (range {:.1}–{:.1}); original VPs: {} pps",
        stats::median(&rates).unwrap_or(f64::NAN),
        rates.iter().copied().fold(f64::INFINITY, f64::min),
        rates.iter().copied().fold(0.0, f64::max),
        ProbeRate::MILLION_SCALE_VP.0
    ));

    // Time to run the original selection over increasing target counts:
    // every VP probes 3 representatives per target with 3 packets.
    let mut t = Table {
        heading: "full campaign duration (every VP probes every target's representatives)".into(),
        columns: ["targets (/24 prefixes)", "platform probes", "500 pps VPs"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows: Vec::new(),
    };
    for targets in [1_000u64, 100_000, 1_000_000, 4_000_000] {
        let packets_per_target = (REPRESENTATIVES * 3) as u64;
        let platform_secs = fleet_time_secs(&d.world, &d.vps, targets, packets_per_target);
        let original_secs = ProbeRate::MILLION_SCALE_VP.time_for(targets * packets_per_target);
        t.rows.push(vec![
            targets.to_string(),
            format_days(platform_secs),
            format_days(original_secs),
        ]);
    }
    report.table(t);
    report.note(
        "the platform's slowest probes pace the campaign, making internet-scale \
         coverage a multi-year effort (the paper could not geolocate millions of \
         addresses on RIPE Atlas)"
            .to_string(),
    );
    report
}

fn format_days(secs: f64) -> String {
    let days = secs / 86_400.0;
    if days >= 1.0 {
        format!("{days:.1} days")
    } else {
        format!("{:.1} hours", secs / 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::EvalScale;
    use geo_model::rng::Seed;

    #[test]
    fn sanitizer_catches_planted_hosts() {
        let d = Dataset::load(EvalScale::tiny(Seed(331)));
        let r = sanitize_report(&d);
        assert!(r.notes[0].contains("caught 1"));
        // A displacement that moves a probe further from every anchor is
        // undetectable by SOI checks; most (not necessarily all) planted
        // probes are caught.
        let caught: u32 = r.notes[1]
            .split("caught ")
            .nth(1)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(caught >= 3, "only {caught}/4 planted probes caught");
    }

    #[test]
    fn platform_is_much_slower_than_original() {
        let d = Dataset::load(EvalScale::tiny(Seed(331)));
        let r = deployability(&d);
        // Probes are 4-12 pps; 500 pps VPs must be far faster in every row.
        assert!(!r.tables[0].rows.is_empty());
    }
}
