//! Figure 8 (Appendix C) — population density of the targets dataset.

use crate::dataset::Dataset;
use crate::report::{log_thresholds, Report};
use geo_model::stats;

/// Figure 8: CDF of the population density at each target, showing the
/// dataset covers both rural and urban areas.
pub fn fig8(d: &Dataset) -> Report {
    let mut report = Report::new("Figure 8 — population density of the targets");
    let densities: Vec<f64> = (0..d.targets.len())
        .map(|t| d.world.density_at(&d.target_host(t).location))
        .collect();
    report.note(format!(
        "median {:.0} people/km²; min {:.1}, max {:.0}",
        stats::median(&densities).unwrap_or(f64::NAN),
        densities.iter().copied().fold(f64::INFINITY, f64::min),
        densities.iter().copied().fold(0.0, f64::max)
    ));
    let xs = log_thresholds(1.0, 100_000.0, 2);
    let series = vec![("targets".to_string(), stats::cdf_at(&densities, &xs))];
    report.cdf_section(
        "CDF of targets",
        "population density (people/km²)",
        &xs,
        &series,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::EvalScale;
    use geo_model::rng::Seed;

    #[test]
    fn covers_rural_and_urban() {
        let d = Dataset::load(EvalScale::tiny(Seed(311)));
        let r = fig8(&d);
        let last = r.tables[0].rows.last().unwrap();
        let frac: f64 = last[1].parse().unwrap();
        assert!(frac > 0.9, "CDF does not reach ~1: {frac}");
    }
}
