//! Tables 1 and 2 — dataset recap and AS-category composition.

use crate::dataset::Dataset;
use crate::report::{Report, Table};
use world_sim::asn::AsCategory;
use world_sim::census::Census;
use world_sim::continent::Continent;

/// Table 1: targets, vantage points and services used by the replication.
pub fn tab1(d: &Dataset) -> Report {
    let census = Census::of(&d.world);
    let mut report = Report::new("Table 1 — datasets of the replication");
    report.note(format!(
        "targets: {} sanitized anchors in {} cities, {} countries, {} ASes",
        d.anchors.len(),
        census.anchor_cities,
        census.anchor_countries,
        census.anchor_ases
    ));
    let mut t = Table {
        heading: "replication datasets".into(),
        columns: ["dataset", "value"].iter().map(|s| s.to_string()).collect(),
        rows: vec![
            vec![
                "replication targets".into(),
                format!("{} anchors", d.anchors.len()),
            ],
            vec![
                "million-scale VPs".into(),
                format!("{} probes", d.vps.len()),
            ],
            vec![
                "street-level VPs".into(),
                format!("{} anchors", d.anchors.len()),
            ],
            vec![
                "other datasets".into(),
                "simulated Nominatim / Overpass / hitlist / GPW density".into(),
            ],
        ],
    };
    let mut per_continent = Vec::new();
    for (i, c) in Continent::ALL.iter().enumerate() {
        if census.anchors_per_continent[i] > 0 {
            per_continent.push(format!("{} {}", c.code(), census.anchors_per_continent[i]));
        }
    }
    t.rows.push(vec![
        "targets per continent".into(),
        per_continent.join(", "),
    ]);
    report.table(t);
    report
}

/// Table 2: AS categories of probes, anchors and their union.
pub fn tab2(d: &Dataset) -> Report {
    let census = Census::of(&d.world);
    let mut report = Report::new("Table 2 — AS categories (CAIDA-style)");
    let mut t = Table {
        heading: "hosts per AS category".into(),
        columns: std::iter::once("dataset".to_string())
            .chain(AsCategory::ALL.iter().map(|c| c.label().to_string()))
            .collect(),
        rows: Vec::new(),
    };
    let row = |name: &str, counts: &world_sim::census::CategoryCounts| -> Vec<String> {
        std::iter::once(name.to_string())
            .chain(AsCategory::ALL.iter().enumerate().map(|(i, cat)| {
                format!(
                    "{} ({:.1}%)",
                    counts.counts[i],
                    100.0 * counts.fraction(*cat)
                )
            }))
            .collect()
    };
    t.rows.push(row("Anchors", &census.anchor_categories));
    t.rows.push(row("Probes", &census.probe_categories));
    t.rows.push(row(
        "Probes + Anchors",
        &census.probe_categories.plus(&census.anchor_categories),
    ));
    report.table(t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::EvalScale;
    use geo_model::rng::Seed;

    #[test]
    fn tables_render() {
        let d = Dataset::load(EvalScale::tiny(Seed(321)));
        let t1 = tab1(&d);
        assert!(t1.tables[0].rows.len() >= 5);
        let t2 = tab2(&d);
        assert_eq!(t2.tables[0].rows.len(), 3);
        assert_eq!(t2.tables[0].columns.len(), 7);
    }
}
