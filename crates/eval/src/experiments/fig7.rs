//! Figure 7 — CBG with all RIPE Atlas VPs vs commercial geolocation
//! databases (§6).

use super::cbg_errors_all_vps;
use crate::dataset::Dataset;
use crate::report::{log_thresholds, Report};
use geo_model::ip::Prefix24;
use geo_model::stats;
use ipgeo::dbsim::GeoDatabase;

/// Figure 7: error CDFs of CBG (all VPs), the MaxMind-free-like database
/// and the IPinfo-like database over the target prefixes.
pub fn fig7(d: &Dataset) -> Report {
    let mut report = Report::new("Figure 7 — CBG vs geolocation databases");
    let prefixes: Vec<Prefix24> = d
        .targets
        .iter()
        .map(|&t| d.world.host(t).ip.prefix24())
        .collect();
    let mm = GeoDatabase::maxmind_like(&d.world, &prefixes, d.scale.seed);
    let ii = GeoDatabase::ipinfo_like(&d.world, &d.net, &prefixes, d.scale.seed);

    let db_errors = |db: &GeoDatabase| -> Vec<f64> {
        (0..d.targets.len())
            .filter_map(|t| {
                let h = d.target_host(t);
                db.lookup(h.ip).map(|p| p.distance(&h.location).value())
            })
            .collect()
    };
    let all = cbg_errors_all_vps(d);
    let e_mm = db_errors(&mm);
    let e_ii = db_errors(&ii);

    for (name, errs) in [
        ("All VPs (CBG)", &all),
        ("MaxMind (free)-like", &e_mm),
        ("IPinfo-like", &e_ii),
    ] {
        report.note(format!(
            "{name}: median {:.1} km, {:.0}% within 40 km",
            stats::median(errs).unwrap_or(f64::NAN),
            100.0 * stats::fraction_at_most(errs, 40.0)
        ));
    }
    let xs = log_thresholds(1.0, 10_000.0, 4);
    let series = vec![
        ("All VPs".to_string(), stats::cdf_at(&all, &xs)),
        ("MaxMind (free)-like".to_string(), stats::cdf_at(&e_mm, &xs)),
        ("IPinfo-like".to_string(), stats::cdf_at(&e_ii, &xs)),
    ];
    report.cdf_section("CDF of targets", "error (km)", &xs, &series);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::EvalScale;
    use geo_model::rng::Seed;

    #[test]
    fn ipinfo_wins_at_city_level() {
        let d = Dataset::load(EvalScale::tiny(Seed(301)));
        let r = fig7(&d);
        let city = |s: &str| -> f64 {
            s.split(", ")
                .nth(1)
                .unwrap()
                .split('%')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let mm = city(&r.notes[1]);
        let ii = city(&r.notes[2]);
        assert!(
            ii > mm,
            "IPinfo-like ({ii}%) should beat MaxMind-like ({mm}%)"
        );
    }
}
