//! One module per paper artifact. Every public function takes a
//! [`Dataset`](crate::Dataset) (plus precomputed street outcomes where
//! relevant) and returns a [`Report`](crate::Report) whose rows mirror the
//! paper's figure or table.

pub mod faults;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod hints;
pub mod sanity;
pub mod tables;

use crate::dataset::Dataset;
use geo_model::soi::SpeedOfInternet;
use ipgeo::cbg::{cbg, VpMeasurement};

/// CBG measurements of one target from a set of VP indices (rows of the
/// main RTT matrix). Reads rows via [`crate::dataset::RttMatrix::row`] so
/// the per-cell index arithmetic stays out of the hot loop.
pub fn measurements_for(
    d: &Dataset,
    target_idx: usize,
    vp_indices: impl Iterator<Item = usize>,
) -> Vec<VpMeasurement> {
    vp_indices
        .filter_map(|vi| {
            let cell = d.rtt.row(vi)[target_idx];
            if cell.is_nan() {
                return None;
            }
            Some(VpMeasurement {
                vp: d.vps[vi],
                location: d.world.host(d.vps[vi]).registered_location,
                rtt: geo_model::units::Ms(cell as f64),
            })
        })
        .collect()
}

/// CBG measurements built from the representative campaign: each VP's
/// constraint RTT is its median min-RTT to the target's `/24`
/// representatives (the first step of the two-step selection).
pub fn measurements_from_reps(
    d: &Dataset,
    target_idx: usize,
    vp_indices: &[usize],
) -> Vec<VpMeasurement> {
    use geo_model::units::Ms;
    let m = d.rep_rtt();
    let k = ipgeo::million::REPRESENTATIVES;
    vp_indices
        .iter()
        .filter_map(|&vi| {
            // One row lookup covers all k representative cells.
            let cells = &m.row(vi)[target_idx * k..target_idx * k + k];
            let vals: Vec<f64> = cells
                .iter()
                .filter(|c| !c.is_nan())
                .map(|&c| c as f64)
                .collect();
            geo_model::stats::median(&vals).map(|rtt| VpMeasurement {
                vp: d.vps[vi],
                location: d.world.host(d.vps[vi]).registered_location,
                rtt: Ms(rtt),
            })
        })
        .collect()
}

/// CBG error (km) of one target using the given VP indices; `None` when
/// the region is empty or no VP answered.
pub fn cbg_error(
    d: &Dataset,
    target_idx: usize,
    vp_indices: impl Iterator<Item = usize>,
) -> Option<f64> {
    let ms = measurements_for(d, target_idx, vp_indices);
    let r = cbg(&ms, SpeedOfInternet::CBG)?;
    Some(d.error_km(target_idx, &r.estimate))
}

/// Per-target CBG errors using *all* sanitized probes — the baseline
/// series reused by Figures 2c, 4 and 7. Target-parallel: each target's
/// CBG run is independent, so the error vector is identical at any
/// `IPGEO_THREADS`.
pub fn cbg_errors_all_vps(d: &Dataset) -> Vec<f64> {
    geo_model::runtime::par_map_indexed(d.targets.len(), |t| cbg_error(d, t, 0..d.vps.len()))
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::EvalScale;
    use geo_model::rng::Seed;
    use geo_model::stats;

    #[test]
    fn all_vp_baseline_is_sane() {
        let d = Dataset::load(EvalScale::tiny(Seed(241)));
        let errs = cbg_errors_all_vps(&d);
        assert!(errs.len() >= d.targets.len() - 3);
        let median = stats::median(&errs).unwrap();
        assert!(median < 300.0, "median {median}");
    }
}
