//! Figure 5 — the street-level technique: end-to-end accuracy (5a),
//! landmark availability (5b), and the distance-order insight (5c).

use crate::dataset::Dataset;
use crate::report::{log_thresholds, Report, Table};
use geo_model::soi::SpeedOfInternet;
use geo_model::stats;
use geo_model::units::Km;
use ipgeo::cbg::{cbg, VpMeasurement};
use ipgeo::oracle::closest_landmark;
use ipgeo::street::{geolocate, StreetConfig, StreetOutcome};
use web_sim::locality::LocalityTester;

/// Street-level outcomes for the street target sample; computed once and
/// shared by Figures 5a–5c and 6a–6c.
pub struct StreetSet {
    /// (target index, outcome) pairs.
    pub outcomes: Vec<(usize, StreetOutcome)>,
}

impl StreetSet {
    /// Runs the three-tier pipeline for the configured street sample.
    pub fn compute(d: &Dataset) -> StreetSet {
        let n = d
            .scale
            .street_sample
            .unwrap_or(d.targets.len())
            .min(d.targets.len());
        let stride = d.targets.len() as f64 / n as f64;
        let cfg = StreetConfig::default();
        // Target-parallel: each three-tier run is a pure function of the
        // target index, so the outcome list is identical at any
        // `IPGEO_THREADS`.
        let outcomes = geo_model::runtime::par_map_indexed(n, |i| {
            let t = (i as f64 * stride) as usize;
            let target = d.targets[t];
            let vps: Vec<_> = d.anchors.iter().copied().filter(|&a| a != target).collect();
            (
                t,
                geolocate(&d.world, &d.net, &d.eco, &vps, target, &cfg, t as u64),
            )
        });
        StreetSet { outcomes }
    }
}

/// The "CBG" line of Figure 5a: classic CBG (2/3 c) from the anchor VPs,
/// using the meshed anchor RTT matrix.
fn anchor_cbg_error(d: &Dataset, target_idx: usize) -> Option<f64> {
    let target = d.targets[target_idx];
    let aidx = d.anchors.iter().position(|&a| a == target)?;
    let ms: Vec<VpMeasurement> = d
        .anchors
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != aidx)
        .filter_map(|(i, &vp)| {
            d.anchor_rtt.get(i, aidx).map(|rtt| VpMeasurement {
                vp,
                location: d.world.host(vp).registered_location,
                rtt,
            })
        })
        .collect();
    let r = cbg(&ms, SpeedOfInternet::CBG)?;
    Some(d.error_km(target_idx, &r.estimate))
}

/// Figure 5a: street level vs CBG vs the closest-landmark oracle.
pub fn fig5a(d: &Dataset, set: &StreetSet) -> Report {
    let mut report = Report::new("Figure 5a — street level vs CBG vs closest-landmark oracle");
    let xs = log_thresholds(0.1, 10_000.0, 4);
    let mut street = Vec::new();
    let mut cbg_errs = Vec::new();
    let mut oracle_errs = Vec::new();
    let mut no_landmark = 0usize;
    let mut fallback_soi = 0usize;

    for (t, out) in &set.outcomes {
        let cbg_err = anchor_cbg_error(d, *t);
        if let Some(e) = cbg_err {
            cbg_errs.push(e);
        }
        if let Some(est) = out.estimate {
            street.push(d.error_km(*t, &est));
        }
        if out.used_fallback_soi {
            fallback_soi += 1;
        }
        // Oracle: closest passed landmark; CBG fallback when none exists
        // (the paper's 46 targets).
        let ids: Vec<_> = out.landmarks.iter().map(|l| l.entity).collect();
        let true_loc = d.target_host(*t).location;
        match closest_landmark(&d.eco, &ids, &true_loc) {
            Some((_, dist)) => oracle_errs.push(dist.value()),
            None => {
                no_landmark += 1;
                if let Some(e) = cbg_err {
                    oracle_errs.push(e);
                }
            }
        }
    }

    report.note(format!(
        "street level: median {:.1} km | CBG: median {:.1} km | oracle: {:.0}% within 1 km",
        stats::median(&street).unwrap_or(f64::NAN),
        stats::median(&cbg_errs).unwrap_or(f64::NAN),
        100.0 * stats::fraction_at_most(&oracle_errs, 1.0)
    ));
    report.note(format!(
        "{no_landmark} targets had no landmark (CBG fallback); {fallback_soi} needed the 2/3c fallback"
    ));
    let series = vec![
        ("Street Level".to_string(), stats::cdf_at(&street, &xs)),
        ("CBG".to_string(), stats::cdf_at(&cbg_errs, &xs)),
        (
            "Closest Landmark".to_string(),
            stats::cdf_at(&oracle_errs, &xs),
        ),
    ];
    report.cdf_section("CDF of targets", "error (km)", &xs, &series);
    report
}

/// Figure 5b: number of targets with at least one landmark within
/// 1/5/10/40 km, with and without the additional latency check.
pub fn fig5b(d: &Dataset, set: &StreetSet) -> Report {
    let mut report = Report::new("Figure 5b — targets with a close landmark");
    let tester = LocalityTester::new(d.scale.seed.derive("fig5b"));
    let distances = [1.0f64, 5.0, 10.0, 40.0];
    let mut plain = [0usize; 4];
    let mut checked = [0usize; 4];
    let total = set.outcomes.len();
    let mut candidates = 0u64;
    let mut passed = 0u64;

    for (t, out) in &set.outcomes {
        let true_loc = d.target_host(*t).location;
        let target = d.targets[*t];
        candidates += out.locality_tests;
        passed += out.landmarks.len() as u64;
        let mut best_plain = f64::INFINITY;
        let mut best_checked = f64::INFINITY;
        for lm in &out.landmarks {
            let dist = lm.claimed_location.distance(&true_loc).value();
            best_plain = best_plain.min(dist);
            if dist <= 40.0 {
                let entity = d.eco.entity(lm.entity);
                if tester.latency_check(&d.world, &d.net, &d.eco, target, entity) {
                    best_checked = best_checked.min(dist);
                }
            }
        }
        for (i, &cut) in distances.iter().enumerate() {
            if best_plain <= cut {
                plain[i] += 1;
            }
            if best_checked <= cut {
                checked[i] += 1;
            }
        }
    }

    report.note(format!(
        "{passed} landmarks passed out of {candidates} tested candidates ({:.1}%)",
        100.0 * passed as f64 / candidates.max(1) as f64
    ));
    let mut table = Table {
        heading: "targets with at least one close landmark".into(),
        columns: [
            "landmark distance",
            "# of targets",
            "# with latency-checked landmarks",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows: Vec::new(),
    };
    for (i, &cut) in distances.iter().enumerate() {
        table.rows.push(vec![
            format!("{cut:.0} km"),
            format!(
                "{} ({:.0}%)",
                plain[i],
                100.0 * plain[i] as f64 / total as f64
            ),
            format!(
                "{} ({:.0}%)",
                checked[i],
                100.0 * checked[i] as f64 / total as f64
            ),
        ]);
    }
    report.table(table);
    report
}

/// Figure 5c: measured vs geographic distance; the order-preservation
/// insight, summarized by the median per-target Pearson correlation.
pub fn fig5c(d: &Dataset, set: &StreetSet) -> Report {
    let mut report =
        Report::new("Figure 5c — measured vs geographic landmark distances (order preservation)");
    let speed = SpeedOfInternet::STREET_LEVEL.km_per_ms();
    let mut correlations = Vec::new();
    let mut example = Table {
        heading: "example target scatter (first target with >= 8 usable landmarks)".into(),
        columns: ["geographic distance (km)", "measured distance (km)"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows: Vec::new(),
    };

    for (t, out) in &set.outcomes {
        let true_loc = d.target_host(*t).location;
        let mut geo = Vec::new();
        let mut meas = Vec::new();
        for lm in &out.landmarks {
            let Some(delay) = lm.delay_ms else { continue };
            if delay < 0.0 {
                continue;
            }
            geo.push(lm.claimed_location.distance(&true_loc).value());
            meas.push(delay * speed);
        }
        if let Some(r) = stats::pearson(&geo, &meas) {
            correlations.push(r);
        }
        if example.rows.is_empty() && geo.len() >= 8 {
            for (g, m) in geo.iter().zip(&meas).take(20) {
                example
                    .rows
                    .push(vec![format!("{g:.2}"), format!("{m:.1}")]);
            }
        }
    }

    report.note(format!(
        "median Pearson correlation between measured and geographic distances: {:.2} over {} targets",
        stats::median(&correlations).unwrap_or(f64::NAN),
        correlations.len()
    ));
    if !example.rows.is_empty() {
        report.table(example);
    }
    report
}

/// Helper for tests and Figure 6: distance conversion used above.
pub fn measured_distance_km(delay_ms: f64) -> Km {
    Km(delay_ms * SpeedOfInternet::STREET_LEVEL.km_per_ms())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::EvalScale;
    use geo_model::rng::Seed;

    fn setup() -> (Dataset, StreetSet) {
        let d = Dataset::load(EvalScale::tiny(Seed(281)));
        let s = StreetSet::compute(&d);
        (d, s)
    }

    #[test]
    fn street_set_covers_sample() {
        let (d, s) = setup();
        assert_eq!(
            s.outcomes.len(),
            d.scale.street_sample.unwrap().min(d.targets.len())
        );
    }

    #[test]
    fn fig5a_has_three_series() {
        let (d, s) = setup();
        let r = fig5a(&d, &s);
        assert_eq!(r.tables[0].columns.len(), 4); // x + 3 series
    }

    #[test]
    fn fig5b_counts_are_monotone_in_distance() {
        let (d, s) = setup();
        let r = fig5b(&d, &s);
        let counts: Vec<usize> = r.tables[0]
            .rows
            .iter()
            .map(|row| row[1].split(' ').next().unwrap().parse().unwrap())
            .collect();
        for w in counts.windows(2) {
            assert!(w[0] <= w[1], "closer cutoffs must match fewer targets");
        }
        // Latency check can only remove targets.
        for row in &r.tables[0].rows {
            let plain: usize = row[1].split(' ').next().unwrap().parse().unwrap();
            let checked: usize = row[2].split(' ').next().unwrap().parse().unwrap();
            assert!(checked <= plain);
        }
    }

    #[test]
    fn fig5c_reports_weak_correlation() {
        let (d, s) = setup();
        let r = fig5c(&d, &s);
        assert!(r.notes[0].contains("median Pearson"));
    }
}
