//! Fault sweep: million-scale accuracy and cost under injected platform
//! faults (the `atlas_sim::faults` model driven through the resilient
//! campaign executor).

use crate::dataset::Dataset;
use crate::report::{Report, Table};
use atlas_sim::{FaultPlan, FaultProfile};
use geo_model::ip::Ipv4;
use geo_model::stats;
use ipgeo::million;
use ipgeo::Resilience;

/// VPs kept by the million-scale selection in this sweep.
const K: usize = 10;

/// Runs the million-scale campaign once per fault profile over the same
/// targets with the same seed — only the fault plan differs between rows,
/// so accuracy and cost deltas are attributable to the injected faults
/// and the executor's recovery, not to measurement noise.
pub fn fault_sweep(d: &Dataset) -> Report {
    let mut report = Report::new("fault sweep — million-scale geolocation under platform faults");
    let sample = d.targets.len().min(24);
    let ips: Vec<Ipv4> = d
        .targets
        .iter()
        .take(sample)
        .map(|&t| d.world.host(t).ip)
        .collect();
    report.note(format!(
        "{} targets, {} VPs, k={K}; executor: bounded retries, \
         deterministic backoff, partial-result tolerance",
        ips.len(),
        d.vps.len()
    ));

    let mut t = Table {
        heading: "per-profile campaign outcomes".into(),
        columns: [
            "profile",
            "located",
            "median error (km)",
            "retries",
            "faults survived",
            "delivered replies",
            "credit overhead",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows: Vec::new(),
    };

    for profile in [
        FaultProfile::None,
        FaultProfile::Flaky,
        FaultProfile::Hostile,
    ] {
        let plan = FaultPlan::new(d.scale.seed.derive("fault-sweep"), profile);
        let res = Resilience::with_plan(&plan);
        let (outcomes, rep) = million::campaign(&d.world, &d.net, &res, &d.vps, &ips, K, 0xFA_0175);

        let errors: Vec<f64> = outcomes
            .iter()
            .zip(d.targets.iter().take(sample))
            .filter_map(|(o, &id)| {
                let truth = d.world.host(id).location;
                o.cbg.as_ref().map(|r| r.estimate.distance(&truth).value())
            })
            .collect();
        let overhead = if rep.credits.baseline > 0 {
            (rep.credits.net() as f64 / rep.credits.baseline as f64 - 1.0) * 100.0
        } else {
            0.0
        };
        t.rows.push(vec![
            profile.to_string(),
            format!("{}/{}", errors.len(), ips.len()),
            format!("{:.1}", stats::median(&errors).unwrap_or(f64::NAN)),
            rep.retries.to_string(),
            rep.faults.total().to_string(),
            format!("{}/{}", rep.delivered, rep.requested),
            format!("{overhead:+.1}%"),
        ]);
    }
    report.table(t);
    report
}
