//! Figure 4 — geolocation error per continent.

use super::cbg_error;
use crate::dataset::Dataset;
use crate::report::{log_thresholds, Report};
use geo_model::stats;
use world_sim::continent::Continent;

/// Figure 4: per-continent error CDFs of CBG with all VPs, plus the
/// §5.1.5 diagnostics (fraction of targets with a VP within 40 km).
pub fn fig4(d: &Dataset) -> Report {
    let mut report = Report::new("Figure 4 — error per continent");
    let xs = log_thresholds(1.0, 10_000.0, 4);
    let mut series = Vec::new();

    for continent in Continent::ALL {
        let idxs: Vec<usize> = (0..d.targets.len())
            .filter(|&t| d.world.city(d.target_host(t).city).continent == continent)
            .collect();
        if idxs.is_empty() {
            continue;
        }
        let errs: Vec<f64> = idxs
            .iter()
            .filter_map(|&t| cbg_error(d, t, 0..d.vps.len()))
            .collect();
        // §5.1.5 diagnostic: does the continent's accuracy track close-VP
        // availability?
        let with_close_vp = idxs
            .iter()
            .filter(|&&t| {
                let tloc = d.target_host(t).location;
                (0..d.vps.len()).any(|vi| {
                    d.world
                        .host(d.vps[vi])
                        .registered_location
                        .distance(&tloc)
                        .value()
                        <= 40.0
                })
            })
            .count();
        report.note(format!(
            "{} ({}): median {:.1} km, {:.0}% within 40 km; {:.0}% of targets have a VP within 40 km",
            continent.code(),
            idxs.len(),
            stats::median(&errs).unwrap_or(f64::NAN),
            100.0 * stats::fraction_at_most(&errs, 40.0),
            100.0 * with_close_vp as f64 / idxs.len() as f64
        ));
        series.push((
            format!("{} ({})", continent.code(), idxs.len()),
            stats::cdf_at(&errs, &xs),
        ));
    }
    report.cdf_section("CDF of targets", "error (km)", &xs, &series);

    // §5.1.5 deep dive: for high-error targets (> 300 km), is the problem
    // missing close VPs, or close VPs that measure badly? The paper found
    // 26 such European targets whose close probes reported a median
    // min-RTT of 7.96 ms — last-mile delay, not geography.
    let mut close_rtts_of_bad = Vec::new();
    let mut bad_targets = 0usize;
    for t in 0..d.targets.len() {
        let Some(err) = cbg_error(d, t, 0..d.vps.len()) else {
            continue;
        };
        if err <= 300.0 {
            continue;
        }
        bad_targets += 1;
        let tloc = d.target_host(t).location;
        let close_rtts: Vec<f64> = (0..d.vps.len())
            .filter(|&vi| {
                d.world
                    .host(d.vps[vi])
                    .registered_location
                    .distance(&tloc)
                    .value()
                    <= 40.0
            })
            .filter_map(|vi| d.rtt.get(vi, t).map(|m| m.value()))
            .collect();
        if let Some(m) = stats::median(&close_rtts) {
            close_rtts_of_bad.push(m);
        }
    }
    if bad_targets > 0 {
        report.note(format!(
            "§5.1.5: {} targets err > 300 km; median min-RTT of their close (≤40 km)              probes: {:.2} ms (paper: 26 EU targets at 7.96 ms — close probes exist              but measure badly)",
            bad_targets,
            stats::median(&close_rtts_of_bad).unwrap_or(f64::NAN)
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::EvalScale;
    use geo_model::rng::Seed;

    #[test]
    fn covers_the_worlds_continents() {
        let d = Dataset::load(EvalScale::tiny(Seed(271)));
        let r = fig4(&d);
        // The tiny world spans Europe and North America.
        assert!(r.notes.iter().any(|n| n.starts_with("EU")));
        assert!(r.notes.iter().any(|n| n.starts_with("NA")));
        assert_eq!(r.tables.len(), 1);
    }
}
