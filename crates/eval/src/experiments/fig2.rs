//! Figure 2 — the three hypotheses on how VP subsets affect accuracy.

use super::{cbg_error, cbg_errors_all_vps};
use crate::dataset::Dataset;
use crate::report::{log_thresholds, Report, Table};
use geo_model::runtime::par_map_indexed;
use geo_model::stats;
use rand::seq::SliceRandom;

/// Subset sizes for Fig. 2a, clipped to the VP population (which is
/// always included as the final size).
fn fig2a_sizes(n_vps: usize) -> Vec<usize> {
    let mut sizes: Vec<usize> = [10usize, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10_000]
        .into_iter()
        .filter(|&s| s < n_vps)
        .collect();
    sizes.push(n_vps);
    sizes
}

/// Median CBG error over the targets for one random VP subset.
fn trial_median_error(d: &Dataset, subset: &[usize]) -> Option<f64> {
    let errs: Vec<f64> = (0..d.targets.len())
        .filter_map(|t| cbg_error(d, t, subset.iter().copied()))
        .collect();
    stats::median(&errs)
}

fn random_subsets(d: &Dataset, size: usize, trials: usize, tag: u64) -> Vec<Vec<usize>> {
    let mut out = Vec::with_capacity(trials);
    for trial in 0..trials {
        let seed = d
            .scale
            .seed
            .derive_index("fig2-subset", tag ^ (trial as u64) << 20 ^ size as u64);
        let mut rng = seed.rng();
        let mut idx: Vec<usize> = (0..d.vps.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(size);
        out.push(idx);
    }
    out
}

/// Median errors over `trials` random subsets of `size` VPs. Each trial's
/// subset is a pure function of (seed, tag, trial, size), so the trials
/// run in parallel with output identical to the serial loop.
fn trial_medians(d: &Dataset, size: usize, tag: u64) -> Vec<f64> {
    let subsets = random_subsets(d, size, d.scale.trials, tag);
    par_map_indexed(subsets.len(), |i| trial_median_error(d, &subsets[i]))
        .into_iter()
        .flatten()
        .collect()
}

/// Figure 2a: number of VPs vs geolocation error (error bars of the
/// median error over random trials per subset size).
pub fn fig2a(d: &Dataset) -> Report {
    let mut report = Report::new("Figure 2a — number of VPs vs. accuracy");
    report.note(format!(
        "{} targets, {} VPs, {} trials per size",
        d.targets.len(),
        d.vps.len(),
        d.scale.trials
    ));
    let mut table = Table {
        heading: "median geolocation error (km) over trials".into(),
        columns: ["VPs", "min", "q25", "median", "q75", "max"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows: Vec::new(),
    };
    for size in fig2a_sizes(d.vps.len()) {
        let medians = trial_medians(d, size, 0xA2);
        if let Some(eb) = stats::error_bars(&medians) {
            table.rows.push(vec![
                size.to_string(),
                format!("{:.1}", eb.min),
                format!("{:.1}", eb.q25),
                format!("{:.1}", eb.median),
                format!("{:.1}", eb.q75),
                format!("{:.1}", eb.max),
            ]);
        }
    }
    report.table(table);
    report
}

/// Figure 2b: CDF of the median error for subset sizes 100/500/1000/2000.
pub fn fig2b(d: &Dataset) -> Report {
    let mut report = Report::new("Figure 2b — accuracy vs. subset sizes");
    report.note(format!("{} trials per size", d.scale.trials));
    let xs = log_thresholds(1.0, 10_000.0, 4);
    let mut series = Vec::new();
    for size in [100usize, 500, 1000, 2000] {
        if size > d.vps.len() {
            continue;
        }
        let medians = trial_medians(d, size, 0xB2);
        if let (Some(lo), Some(hi)) = (
            stats::quantile(&medians, 0.0),
            stats::quantile(&medians, 1.0),
        ) {
            report.note(format!(
                "{size} VPs: median error ranges {lo:.0}–{hi:.0} km"
            ));
        }
        series.push((format!("{size} VPs"), stats::cdf_at(&medians, &xs)));
    }
    report.cdf_section("CDF of median error", "error (km)", &xs, &series);
    report
}

/// Figure 2c: error with all VPs, and with VPs closer than
/// 40/100/500/1000 km removed per target.
pub fn fig2c(d: &Dataset) -> Report {
    let mut report = Report::new("Figure 2c — error with all VPs and with close VPs removed");
    let xs = log_thresholds(1.0, 10_000.0, 4);
    let mut series = Vec::new();

    let all = cbg_errors_all_vps(d);
    report.note(format!(
        "all VPs: median {:.1} km, {:.0}% of targets within 40 km",
        stats::median(&all).unwrap_or(f64::NAN),
        100.0 * stats::fraction_at_most(&all, 40.0)
    ));
    series.push(("All VPs".to_string(), stats::cdf_at(&all, &xs)));

    for cutoff in [40.0f64, 100.0, 500.0, 1000.0] {
        let errs: Vec<f64> = par_map_indexed(d.targets.len(), |t| {
            let tloc = d.target_host(t).location;
            let far = (0..d.vps.len()).filter(|&vi| {
                d.world
                    .host(d.vps[vi])
                    .registered_location
                    .distance(&tloc)
                    .value()
                    > cutoff
            });
            cbg_error(d, t, far)
        })
        .into_iter()
        .flatten()
        .collect();
        report.note(format!(
            "VPs > {cutoff:.0} km: median {:.1} km, {:.0}% within 40 km",
            stats::median(&errs).unwrap_or(f64::NAN),
            100.0 * stats::fraction_at_most(&errs, 40.0)
        ));
        series.push((format!("VPs > {cutoff:.0} km"), stats::cdf_at(&errs, &xs)));
    }
    report.cdf_section("CDF of targets", "error (km)", &xs, &series);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::EvalScale;
    use geo_model::rng::Seed;

    fn tiny() -> Dataset {
        crate::Dataset::load(EvalScale::tiny(Seed(251)))
    }

    #[test]
    fn fig2a_rows_cover_sizes() {
        let d = tiny();
        let r = fig2a(&d);
        assert!(!r.tables[0].rows.is_empty());
        // Error bars are ordered within each row.
        for row in &r.tables[0].rows {
            let vals: Vec<f64> = row[1..].iter().map(|v| v.parse().unwrap()).collect();
            for w in vals.windows(2) {
                assert!(w[0] <= w[1] + 1e-9, "bars out of order: {row:?}");
            }
        }
    }

    #[test]
    fn fig2a_more_vps_helps() {
        let d = tiny();
        let r = fig2a(&d);
        let medians: Vec<f64> = r.tables[0]
            .rows
            .iter()
            .map(|row| row[3].parse().unwrap())
            .collect();
        // The paper's core observation: error decreases (weakly) with more
        // VPs. Allow noise but demand the last size beats the first.
        assert!(
            medians.last().unwrap() < medians.first().unwrap(),
            "no improvement from more VPs: {medians:?}"
        );
    }

    #[test]
    fn fig2c_removing_close_vps_hurts() {
        let d = tiny();
        let r = fig2c(&d);
        // First note = all VPs, last note = >1000 km removed.
        let med = |s: &str| -> f64 {
            s.split("median ")
                .nth(1)
                .unwrap()
                .split(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let all = med(&r.notes[0]);
        let worst = med(r.notes.last().unwrap());
        assert!(
            worst > all,
            "removing close VPs did not hurt: {all} vs {worst}"
        );
    }
}
