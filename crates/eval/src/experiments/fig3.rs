//! Figure 3 — the million-scale VP selection and the two-step extension.

use crate::dataset::Dataset;
use crate::report::{log_thresholds, Report, Table};
use geo_model::runtime::par_map_indexed;
use geo_model::soi::SpeedOfInternet;
use geo_model::stats;
use geo_model::units::Ms;
use ipgeo::cbg::cbg;
use ipgeo::million::REPRESENTATIVES;
use ipgeo::two_step::greedy_coverage;
use std::collections::HashMap;

/// Median RTT of one VP (by matrix row) to a target's representatives.
fn rep_median(d: &Dataset, vp_idx: usize, target_idx: usize) -> Option<Ms> {
    let m = d.rep_rtt();
    // One row lookup for the target's k contiguous representative cells.
    let start = target_idx * REPRESENTATIVES;
    let cells = &m.row(vp_idx)[start..start + REPRESENTATIVES];
    let vals: Vec<f64> = cells
        .iter()
        .filter(|c| !c.is_nan())
        .map(|&c| c as f64)
        .collect();
    stats::median(&vals).map(Ms)
}

/// VP indices ranked by median RTT to the target's representatives,
/// restricted to `pool` (indices into `d.vps`).
fn rank_by_reps(d: &Dataset, target_idx: usize, pool: &[usize]) -> Vec<(usize, Ms)> {
    let mut scored: Vec<(usize, Ms)> = pool
        .iter()
        .filter_map(|&vi| rep_median(d, vi, target_idx).map(|m| (vi, m)))
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    scored
}

/// Figure 3a: error with the 1/3/10 closest VPs (by RTT to the target's
/// /24 representatives) vs all VPs.
pub fn fig3a(d: &Dataset) -> Report {
    let mut report =
        Report::new("Figure 3a — original VP selection: closest-by-representative VPs vs all VPs");
    let all_pool: Vec<usize> = (0..d.vps.len()).collect();
    let xs = log_thresholds(1.0, 10_000.0, 4);
    let mut series = Vec::new();
    for &k in &[1usize, 3, 10] {
        // Target-parallel: ranking VPs by representative RTT is the
        // dominant cost and independent per target.
        let errs: Vec<f64> = par_map_indexed(d.targets.len(), |t| {
            let ranked = rank_by_reps(d, t, &all_pool);
            let chosen = ranked.iter().take(k).map(|&(vi, _)| vi);
            super::cbg_error(d, t, chosen)
        })
        .into_iter()
        .flatten()
        .collect();
        report.note(format!(
            "{k} closest VP(s): median {:.1} km, {:.0}% within 10 km, {:.0}% within 40 km",
            stats::median(&errs).unwrap_or(f64::NAN),
            100.0 * stats::fraction_at_most(&errs, 10.0),
            100.0 * stats::fraction_at_most(&errs, 40.0)
        ));
        series.push((format!("{k} closest VP (RTT)"), stats::cdf_at(&errs, &xs)));
    }
    let all = super::cbg_errors_all_vps(d);
    report.note(format!(
        "all VPs: median {:.1} km, {:.0}% within 10 km",
        stats::median(&all).unwrap_or(f64::NAN),
        100.0 * stats::fraction_at_most(&all, 10.0)
    ));
    series.push(("All VPs".to_string(), stats::cdf_at(&all, &xs)));
    report.cdf_section("CDF of targets", "error (km)", &xs, &series);
    report
}

/// One target's two-step run on the matrices. Returns (error_km,
/// measurements) when the pipeline succeeds.
fn two_step_target(d: &Dataset, coverage_idx: &[usize], target_idx: usize) -> Option<(f64, u64)> {
    // Step 1: coverage subset -> representatives -> CBG region.
    let ms1 = super::measurements_from_reps(d, target_idx, coverage_idx);
    let mut measurements = (coverage_idx.len() * REPRESENTATIVES) as u64;
    let step1 = cbg(&ms1, SpeedOfInternet::CBG)?;

    // Step 2: one VP per (AS, city) inside the region (membership via the
    // reduced active set — equivalent, see `ipgeo::two_step`).
    let active_region = geo_model::constraint::Region::from_circles(step1.region.active_circles());
    let mut per_pop: HashMap<(u32, u32), usize> = HashMap::new();
    for vi in 0..d.vps.len() {
        let h = d.world.host(d.vps[vi]);
        if active_region.contains(&h.registered_location) {
            per_pop.entry((h.asn.0, h.city.0)).or_insert(vi);
        }
    }
    let mut candidates: Vec<usize> = per_pop.into_values().collect();
    candidates.sort_unstable();
    measurements += (candidates.len() * REPRESENTATIVES) as u64;

    let ranked = rank_by_reps(d, target_idx, &candidates);
    let best = ranked.first().map(|&(vi, _)| vi)?;
    measurements += 1;
    let err = super::cbg_error(d, target_idx, std::iter::once(best))?;
    Some((err, measurements))
}

/// Figures 3b and 3c: accuracy and overhead of the two-step selection for
/// first-step sizes 10/100/300/500/1000.
pub fn fig3bc(d: &Dataset) -> Report {
    let mut report =
        Report::new("Figures 3b/3c — two-step VP selection: accuracy and measurement overhead");
    let sizes: Vec<usize> = [10usize, 100, 300, 500, 1000]
        .into_iter()
        .filter(|&s| s <= d.vps.len())
        .collect();
    let xs = log_thresholds(1.0, 10_000.0, 4);
    let mut series = Vec::new();
    let mut overhead = Table {
        heading: "Figure 3c — measurement overhead".into(),
        columns: ["VPs in first step", "measurements", "% of full"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows: Vec::new(),
    };
    let full = (d.vps.len() * REPRESENTATIVES * d.targets.len()) as u64;

    // Greedy coverage over the full sanitized VP set, reused across sizes
    // (prefix property of the greedy chain).
    let max_size = *sizes.last().expect("non-empty sizes");
    let chain = greedy_coverage(&d.world, &d.vps, max_size);
    let vp_index: HashMap<_, _> = d.vps.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    for &s in &sizes {
        let coverage: Vec<usize> = chain[..s.min(chain.len())]
            .iter()
            .map(|v| vp_index[v])
            .collect();
        // Target-parallel two-step runs; the (error, measurement-count)
        // pairs are reduced in index order, so totals are deterministic.
        let outcomes = par_map_indexed(d.targets.len(), |t| two_step_target(d, &coverage, t));
        let mut errs = Vec::new();
        let mut total_meas = 0u64;
        for (err, meas) in outcomes.into_iter().flatten() {
            errs.push(err);
            total_meas += meas;
        }
        report.note(format!(
            "first step {s} VPs: median {:.1} km, {:.0}% within 40 km, {:.2}M measurements",
            stats::median(&errs).unwrap_or(f64::NAN),
            100.0 * stats::fraction_at_most(&errs, 40.0),
            total_meas as f64 / 1e6
        ));
        series.push((format!("{s} VPs"), stats::cdf_at(&errs, &xs)));
        overhead.rows.push(vec![
            s.to_string(),
            format!("{:.2}M", total_meas as f64 / 1e6),
            format!("{:.1}%", 100.0 * total_meas as f64 / full as f64),
        ]);
    }
    let all = super::cbg_errors_all_vps(d);
    series.push(("All VPs".to_string(), stats::cdf_at(&all, &xs)));
    overhead.rows.push(vec![
        "All".to_string(),
        format!("{:.2}M", full as f64 / 1e6),
        "100%".to_string(),
    ]);
    report.cdf_section("Figure 3b — CDF of targets", "error (km)", &xs, &series);
    report.table(overhead);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::EvalScale;
    use geo_model::rng::Seed;

    fn tiny() -> Dataset {
        Dataset::load(EvalScale::tiny(Seed(261)))
    }

    #[test]
    fn fig3a_single_vp_is_competitive() {
        let d = tiny();
        let r = fig3a(&d);
        // k=1 median must be within the same order as the all-VP median
        // (the paper's headline: one well-chosen VP is enough).
        let med = |s: &str| -> f64 {
            s.split("median ")
                .nth(1)
                .unwrap()
                .split(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let k1 = med(&r.notes[0]);
        let all = med(&r.notes[3]);
        assert!(
            k1 < all * 10.0 + 50.0,
            "k=1 ({k1}) far worse than all ({all})"
        );
    }

    #[test]
    fn fig3bc_overhead_below_full() {
        let d = tiny();
        let r = fig3bc(&d);
        let overhead = r.tables.iter().find(|t| t.heading.contains("3c")).unwrap();
        // Every two-step row must be under 100% of the full campaign.
        for row in &overhead.rows {
            if row[0] == "All" {
                continue;
            }
            let pct: f64 = row[2].trim_end_matches('%').parse().unwrap();
            assert!(pct < 100.0, "row {row:?}");
        }
    }
}
