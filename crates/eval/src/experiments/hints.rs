//! Hint sweep: fused (CBG + latency-verified rDNS hints) accuracy versus
//! the pure-latency CBG baseline across a hint coverage × truthfulness
//! grid.
//!
//! Each grid cell re-geolocates the same target sample with the same RTT
//! matrix — only the rDNS knobs differ — so every delta against the CBG
//! column is attributable to the hints and the verification gate. The
//! load-bearing facts (pinned by tests and validated by CI against the
//! benchmark snapshot):
//!
//! - with truthful hints (truthfulness ≥ 0.8) the fused median error is
//!   *strictly below* CBG-only;
//! - with maximally misleading hints (truthfulness 0.0) fused never does
//!   worse than CBG-only: a hint that fails region verification falls
//!   back to the CBG estimate by construction.

use crate::dataset::Dataset;
use crate::report::{Report, Table};
use geo_hints::{probe_consistent, verify_against_region, CodeTable};
use geo_model::soi::SpeedOfInternet;
use geo_model::stats;
use ipgeo::cbg::cbg;
use world_sim::rdns::{hostname, RdnsConfig};

use super::measurements_for;

/// One grid cell's outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HintCell {
    /// Hint coverage knob.
    pub coverage: f64,
    /// Hint truthfulness knob.
    pub truthfulness: f64,
    /// Median CBG-only error (km) over the located sample.
    pub cbg_median_km: f64,
    /// Median fused error (km) over the same sample.
    pub fused_median_km: f64,
    /// Hostnames mined from the sample.
    pub mined: usize,
    /// Hints that survived region verification.
    pub verified: usize,
}

/// Evaluates one (coverage, truthfulness) cell: CBG every sampled target
/// from the full VP set, then fuse a region-verified rDNS hint when the
/// target publishes one. Targets whose CBG fails are skipped in both
/// columns, so the medians compare like with like.
pub fn fused_vs_cbg(
    d: &Dataset,
    table: &CodeTable,
    sample: usize,
    coverage: f64,
    truthfulness: f64,
) -> HintCell {
    let cfg = RdnsConfig::new(coverage, truthfulness);
    let mut cbg_errors = Vec::new();
    let mut fused_errors = Vec::new();
    let (mut mined, mut verified) = (0, 0);
    for t in 0..d.targets.len().min(sample) {
        let ms = measurements_for(d, t, 0..d.vps.len());
        let Some(result) = cbg(&ms, SpeedOfInternet::CBG) else {
            continue;
        };
        let cbg_err = d.error_km(t, &result.estimate);
        let mut fused_err = cbg_err;
        if let Some(name) = hostname(&d.world, &cfg, d.targets[t]) {
            mined += 1;
            let candidates = table.extract(&name.name);
            // Both pipeline gates: region containment, then strict-speed
            // disc consistency over the measurements (which catches
            // decoys a fallback-SoI region was loose enough to admit).
            if let Some(hint) = verify_against_region(&d.world, &result, &name.name, &candidates) {
                if probe_consistent(&hint.center, &ms) {
                    verified += 1;
                    fused_err = d.error_km(t, &hint.center);
                }
            }
        }
        cbg_errors.push(cbg_err);
        fused_errors.push(fused_err);
    }
    HintCell {
        coverage,
        truthfulness,
        cbg_median_km: stats::median(&cbg_errors).unwrap_or(f64::NAN),
        fused_median_km: stats::median(&fused_errors).unwrap_or(f64::NAN),
        mined,
        verified,
    }
}

/// Runs the full coverage × truthfulness grid.
pub fn hint_sweep(d: &Dataset) -> Report {
    let mut report =
        Report::new("hint sweep — fused (CBG + verified rDNS hints) vs pure-latency CBG");
    let table = CodeTable::build(&d.world);
    let sample = d.targets.len().min(120);
    report.note(format!(
        "{} targets sampled, {} VPs; {} airport-code collisions in the code table; \
         verification: hint city center must lie in the CBG constraint region and \
         inside every measurement's strict speed-of-Internet disc",
        d.targets.len().min(sample),
        d.vps.len(),
        table.airport_collisions()
    ));

    let mut t = Table {
        heading: "median error (km) by hint coverage × truthfulness".into(),
        columns: [
            "coverage",
            "truthfulness",
            "cbg median (km)",
            "fused median (km)",
            "improvement",
            "mined",
            "verified",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows: Vec::new(),
    };

    for &coverage in &[0.25, 0.5, 1.0] {
        for &truthfulness in &[0.0, 0.5, 0.8, 1.0] {
            let cell = fused_vs_cbg(d, &table, sample, coverage, truthfulness);
            let improvement = if cell.cbg_median_km > 0.0 {
                (1.0 - cell.fused_median_km / cell.cbg_median_km) * 100.0
            } else {
                0.0
            };
            t.rows.push(vec![
                format!("{coverage:.2}"),
                format!("{truthfulness:.2}"),
                format!("{:.1}", cell.cbg_median_km),
                format!("{:.1}", cell.fused_median_km),
                format!("{improvement:+.1}%"),
                cell.mined.to_string(),
                cell.verified.to_string(),
            ]);
        }
    }
    report.table(t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::EvalScale;
    use geo_model::rng::Seed;

    fn tiny() -> Dataset {
        Dataset::load(EvalScale::tiny(Seed(231)))
    }

    #[test]
    fn truthful_hints_strictly_beat_cbg_only() {
        let d = tiny();
        let table = CodeTable::build(&d.world);
        for truthfulness in [0.8, 1.0] {
            let cell = fused_vs_cbg(&d, &table, usize::MAX, 1.0, truthfulness);
            assert!(
                cell.fused_median_km < cell.cbg_median_km,
                "fused {:.1} km not better than cbg {:.1} km at truthfulness {truthfulness}",
                cell.fused_median_km,
                cell.cbg_median_km
            );
            assert!(cell.verified > 0);
        }
    }

    #[test]
    fn misleading_hints_never_do_worse_than_cbg_only() {
        let d = tiny();
        let table = CodeTable::build(&d.world);
        let cell = fused_vs_cbg(&d, &table, usize::MAX, 1.0, 0.0);
        assert!(
            cell.fused_median_km <= cell.cbg_median_km,
            "fused {:.1} km worse than cbg {:.1} km with maximally stale hints",
            cell.fused_median_km,
            cell.cbg_median_km
        );
    }

    #[test]
    fn zero_coverage_is_exactly_the_cbg_column() {
        let d = tiny();
        let table = CodeTable::build(&d.world);
        let cell = fused_vs_cbg(&d, &table, usize::MAX, 0.0, 1.0);
        assert_eq!(cell.fused_median_km.to_bits(), cell.cbg_median_km.to_bits());
        assert_eq!(cell.mined, 0);
        assert_eq!(cell.verified, 0);
    }

    #[test]
    fn sweep_report_has_the_full_grid() {
        let d = tiny();
        let report = hint_sweep(&d);
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].rows.len(), 12);
    }
}
