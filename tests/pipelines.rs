//! End-to-end pipeline tests: million-scale selection, two-step
//! extension, street-level three-tier, database simulators — the shapes
//! the paper reports must hold on the miniature world.

use eval::experiments as ex;
use eval::{Dataset, EvalScale};
use geo_model::rng::Seed;
use std::sync::OnceLock;

fn dataset() -> &'static Dataset {
    static D: OnceLock<Dataset> = OnceLock::new();
    D.get_or_init(|| Dataset::load(EvalScale::tiny(Seed(1101))))
}

fn street() -> &'static ex::fig5::StreetSet {
    static S: OnceLock<ex::fig5::StreetSet> = OnceLock::new();
    S.get_or_init(|| ex::fig5::StreetSet::compute(dataset()))
}

fn note_value(note: &str, key: &str) -> f64 {
    note.split(key)
        .nth(1)
        .unwrap_or_else(|| panic!("no `{key}` in `{note}`"))
        .trim_start()
        .split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .next()
        .expect("number after key")
        .parse()
        .unwrap_or_else(|e| panic!("bad number after `{key}` in `{note}`: {e}"))
}

/// Hypothesis 3 (Fig. 2c): removing close VPs degrades accuracy, and the
/// degradation grows with the removal radius.
#[test]
fn close_vps_drive_accuracy() {
    let r = ex::fig2::fig2c(dataset());
    let medians: Vec<f64> = r.notes.iter().map(|n| note_value(n, "median")).collect();
    assert!(medians.len() >= 5);
    assert!(
        medians[4] > medians[0],
        "removing all VPs within 1000 km must hurt: {medians:?}"
    );
}

/// Fig. 3a headline: one well-chosen VP is competitive with all VPs.
#[test]
fn single_well_chosen_vp_works() {
    let r = ex::fig3::fig3a(dataset());
    let k1 = note_value(&r.notes[0], "median");
    let all = note_value(&r.notes[3], "median");
    assert!(
        k1 <= all * 8.0 + 40.0,
        "single-VP selection broken: k1 {k1} km vs all {all} km"
    );
}

/// Fig. 3c: every two-step variant is cheaper than the full campaign, and
/// accuracy is preserved within a reasonable factor.
#[test]
fn two_step_reduces_overhead() {
    let r = ex::fig3::fig3bc(dataset());
    let overhead = r
        .tables
        .iter()
        .find(|t| t.heading.contains("3c"))
        .expect("overhead table");
    let mut saw_reduction = false;
    for row in &overhead.rows {
        if row[0] == "All" {
            continue;
        }
        let pct: f64 = row[2].trim_end_matches('%').parse().expect("pct");
        assert!(pct < 100.0);
        if pct < 60.0 {
            saw_reduction = true;
        }
    }
    assert!(saw_reduction, "no size achieved a substantial reduction");
}

/// Fig. 5a shape: the street-level technique is not meaningfully better
/// than CBG (the replication's headline), and both are far from street
/// level for most targets.
#[test]
fn street_level_is_not_street_level() {
    let d = dataset();
    let r = ex::fig5::fig5a(d, street());
    let street_median = note_value(&r.notes[0], "street level: median");
    let cbg_median = note_value(&r.notes[0], "CBG: median");
    // Same ballpark: within 5x of each other.
    assert!(street_median < cbg_median * 5.0 + 50.0);
    assert!(cbg_median < street_median * 5.0 + 50.0);
}

/// Fig. 5b invariants: counts grow with the distance cutoff and the
/// latency check only removes landmarks.
#[test]
fn landmark_availability_table() {
    let d = dataset();
    let r = ex::fig5::fig5b(d, street());
    let rows = &r.tables[0].rows;
    assert_eq!(rows.len(), 4);
    let first: usize = rows[0][1].split(' ').next().unwrap().parse().unwrap();
    let last: usize = rows[3][1].split(' ').next().unwrap().parse().unwrap();
    assert!(last >= first);
}

/// Fig. 5c: the order-preservation insight does not hold — correlation
/// between measured and geographic distances is weak.
#[test]
fn distance_order_is_not_preserved() {
    let d = dataset();
    let r = ex::fig5::fig5c(d, street());
    let median_r = note_value(&r.notes[0], "distances:");
    assert!(
        median_r.abs() < 0.7,
        "suspiciously strong correlation {median_r}; the simulation's noise model may be off"
    );
}

/// Fig. 6a: a meaningful share of landmarks has negative (unusable)
/// D1 + D2 for at least some targets.
#[test]
fn some_delays_are_unusable() {
    let d = dataset();
    let r = ex::fig6::fig6a(d, street());
    assert!(r.notes[0].contains("median fraction"));
}

/// Fig. 6c: geolocating one target takes minutes (not the original
/// paper's 1–2 seconds).
#[test]
fn geolocation_takes_minutes() {
    let d = dataset();
    let r = ex::fig6::fig6c(d, street());
    let median_secs = note_value(&r.notes[0], "median");
    assert!(
        median_secs > 120.0,
        "street-level pipeline implausibly fast: {median_secs}s"
    );
}

/// Fig. 7: the IPinfo-like database beats the MaxMind-like one at city
/// level (the §6 result).
#[test]
fn database_ranking() {
    let r = ex::fig7::fig7(dataset());
    let city = |idx: usize| -> f64 { note_value(&r.notes[idx], ", ") };
    let maxmind = city(1);
    let ipinfo = city(2);
    assert!(ipinfo > maxmind, "ipinfo {ipinfo}% <= maxmind {maxmind}%");
}

/// The whole report suite renders without panicking and contains every
/// paper artifact.
#[test]
fn all_reports_render() {
    let d = dataset();
    let set = street();
    let reports = vec![
        ex::tables::tab1(d),
        ex::tables::tab2(d),
        ex::sanity::sanitize_report(d),
        ex::fig2::fig2b(d),
        ex::fig4::fig4(d),
        ex::fig6::fig6b(d, set),
        ex::fig8::fig8(d),
        ex::sanity::deployability(d),
    ];
    for r in reports {
        let text = r.to_string();
        assert!(text.starts_with("## "), "missing title: {text}");
        assert!(!text.trim().is_empty());
    }
}
