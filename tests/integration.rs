//! Cross-crate integration: world generation → network simulation →
//! measurement platform → sanitization → classic geolocation.

use atlas_sim::{CreditAccount, Platform};
use geo_model::rng::Seed;
use geo_model::soi::SpeedOfInternet;
use geo_model::stats;
use ipgeo::cbg::{cbg, shortest_ping, VpMeasurement};
use net_sim::Network;
use world_sim::{World, WorldConfig};

fn setup() -> (World, Network) {
    let w = World::generate(WorldConfig::small(Seed(1001))).expect("world generates");
    let net = Network::new(Seed(1001));
    (w, net)
}

/// The full §4 pipeline: mesh, sanitize anchors, sanitize probes — then
/// CBG with the surviving VPs is accurate at city level for most targets.
#[test]
fn sanitized_cbg_end_to_end() {
    let (w, net) = setup();
    let mut platform = Platform::new(CreditAccount::upgraded());

    let mesh = platform.anchor_mesh(&w, &net, &w.anchors).expect("mesh");
    let anchors = ipgeo::sanitize_anchors(&w, &w.anchors, &mesh, SpeedOfInternet::CBG);
    assert!(anchors.kept.len() >= w.anchors.len() - 3);

    let rtts =
        geo_model::matrix::DelayMatrix::par_build(w.probes.len(), anchors.kept.len(), |p, row| {
            for (a, slot) in anchors.kept.iter().zip(row.iter_mut()) {
                *slot = geo_model::matrix::DelayMatrix::cell(
                    net.ping_min(&w, w.probes[p], w.host(*a).ip, 3, 11).rtt(),
                );
            }
        });
    let probes = ipgeo::sanitize_probes(&w, &w.probes, &anchors.kept, &rtts, SpeedOfInternet::CBG);

    // Geolocate every surviving anchor with CBG over surviving probes.
    let mut errors = Vec::new();
    for (ai, &target) in anchors.kept.iter().enumerate() {
        let ms: Vec<VpMeasurement> = probes
            .kept
            .iter()
            .filter_map(|&vp| {
                let p = w.probes.iter().position(|&x| x == vp).expect("known probe");
                rtts.get(p, ai).map(|rtt| VpMeasurement {
                    vp,
                    location: w.host(vp).registered_location,
                    rtt,
                })
            })
            .collect();
        if let Some(r) = cbg(&ms, SpeedOfInternet::CBG) {
            errors.push(r.estimate.distance(&w.host(target).location).value());
        }
    }
    assert!(
        errors.len() >= anchors.kept.len() - 3,
        "too many empty regions"
    );
    let median = stats::median(&errors).expect("errors nonempty");
    assert!(median < 150.0, "median error {median} km too large");
    // City-level for a solid majority.
    assert!(
        stats::fraction_at_most(&errors, 100.0) > 0.6,
        "city-level fraction too small"
    );
}

/// Shortest ping agrees with CBG to within the same order of magnitude.
#[test]
fn shortest_ping_vs_cbg() {
    let (w, net) = setup();
    let target = w.host(w.anchors[0]).clone();
    let ms: Vec<VpMeasurement> = w
        .probes
        .iter()
        .filter(|&&p| !w.host(p).is_mis_geolocated())
        .filter_map(|&vp| {
            net.ping_min(&w, vp, target.ip, 3, 5)
                .rtt()
                .map(|rtt| VpMeasurement {
                    vp,
                    location: w.host(vp).registered_location,
                    rtt,
                })
        })
        .collect();
    let sp = shortest_ping(&ms).expect("measurements exist");
    let sp_err = sp.location.distance(&target.location).value();
    let cbg_err = cbg(&ms, SpeedOfInternet::CBG)
        .expect("region nonempty")
        .estimate
        .distance(&target.location)
        .value();
    assert!(sp_err < 500.0, "shortest ping err {sp_err}");
    assert!(cbg_err < 500.0, "cbg err {cbg_err}");
}

/// Platform accounting: a realistic campaign spends credits and virtual
/// time in the expected proportions.
#[test]
fn platform_accounting_end_to_end() {
    let (w, net) = setup();
    let mut platform = Platform::new(CreditAccount::new(1_000_000));
    let vps: Vec<_> = w.probes.iter().copied().take(100).collect();
    let target = w.host(w.anchors[2]).ip;

    let before = platform.credits().balance();
    let batch = platform.ping_from(&w, &net, &vps, target).expect("batch");
    assert_eq!(before - platform.credits().balance(), 300); // 100 VPs * 3 packets
    assert!(batch.duration().as_secs() > 30.0);

    let tr = platform
        .traceroute_from(&w, &net, &vps[..10], target)
        .expect("traceroutes");
    assert_eq!(tr.results.len(), 10);
    assert_eq!(platform.credits().spent(), 300 + 100);
}

/// The same seed reproduces the same full pipeline outcome; a different
/// seed produces a different world.
#[test]
fn determinism_across_full_stack() {
    let run = |seed: u64| -> (usize, f64) {
        let w = World::generate(WorldConfig::small(Seed(seed))).expect("world");
        let net = Network::new(Seed(seed));
        let target = w.host(w.anchors[0]).clone();
        let sum: f64 = w
            .probes
            .iter()
            .take(50)
            .filter_map(|&p| net.ping_min(&w, p, target.ip, 3, 1).rtt())
            .map(|m| m.value())
            .sum();
        (w.hosts.len(), sum)
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}
